// Chaos harness for the serving subsystem: every fault site on the serve
// hot path — admission, batch dispatch, cache lookup, hot-swap, and the
// checkpoint/ANN dependencies underneath — is armed in turn (and in
// combination) under live traffic, and every failure must degrade to a
// typed Status with no dropped callback, no torn response, and no wrong
// data. Runs under the `chaos` ctest label (asan-ubsan job in CI).

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"
#include "serve/server.h"
#include "util/fault_injection.h"

namespace explainti::serve {
namespace {

using core::ExplainTiConfig;
using core::ExplainTiModel;
using core::InferenceSession;
using core::TaskKind;
using util::fault::FaultKind;
using util::fault::FaultRegistry;
using util::fault::FaultSpec;

// Arms `site` for the lifetime of the scope, then disarms everything.
class ArmedFault {
 public:
  ArmedFault(const std::string& site, util::StatusCode code,
             int every_n = 1, int max_fires = -1) {
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.code = code;
    spec.message = "chaos: " + site;
    spec.every_n = every_n;
    spec.max_fires = max_fires;
    FaultRegistry::Instance().Arm(site, spec);
  }
  ~ArmedFault() { FaultRegistry::Instance().DisarmAll(); }
};

struct SharedModel {
  SharedModel() : corpus(MakeCorpus()), model(MakeConfig(), corpus) {
    model.RefreshStores();
  }
  static data::TableCorpus MakeCorpus() {
    data::WikiTableOptions options;
    options.num_tables = 28;
    return data::GenerateWikiTableCorpus(options);
  }
  static ExplainTiConfig MakeConfig() {
    ExplainTiConfig config;
    config.sample_size = 4;
    config.top_k = 3;
    return config;
  }
  data::TableCorpus corpus;
  ExplainTiModel model;
};

const SharedModel& Shared() {
  static const SharedModel* shared = new SharedModel();
  return *shared;
}

ServeRequest MakeRequest(ServeMethod method, int sample_id,
                         int tenant_id = 0) {
  ServeRequest request;
  request.method = method;
  request.task = TaskKind::kType;
  request.sample_id = sample_id;
  request.tenant_id = tenant_id;
  return request;
}

// Every fault leaves the registry disarmed for the next test.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

TEST_F(ChaosTest, AdmissionFaultShedsWithTypedStatusAndServesTheRest) {
  const InferenceSession& session = Shared().model.session();
  InferenceServer server(session);
  // Every 3rd admission hits the injected dependency outage; the rest of
  // the traffic is completely unaffected.
  ArmedFault fault("serve.admit", util::StatusCode::kInternal,
                   /*every_n=*/3);
  int ok = 0, shed = 0;
  for (int i = 0; i < 12; ++i) {
    const ServeResponse response =
        server.ServeSync(MakeRequest(ServeMethod::kPredict, i % 4));
    if (response.status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(response.status.code(), util::StatusCode::kInternal);
      ++shed;
    }
  }
  EXPECT_EQ(shed, 4);
  EXPECT_EQ(ok, 8);
  EXPECT_EQ(
      server.metrics().GetCounter("serve.rejected_admit_fault")->Value(), 4);
}

TEST_F(ChaosTest, DispatchFaultFailsWholeBatchWithoutDroppingCallbacks) {
  const InferenceSession& session = Shared().model.session();
  InferenceServer server(session);
  {
    ArmedFault fault("serve.dispatch", util::StatusCode::kInternal,
                     /*every_n=*/1, /*max_fires=*/1);
    const ServeResponse failed =
        server.ServeSync(MakeRequest(ServeMethod::kPredict, 0));
    // The executor "crashed": the request still completed, with the
    // injected typed status — the callback is never dropped.
    EXPECT_EQ(failed.status.code(), util::StatusCode::kInternal);
  }
  // The next batch is healthy again.
  const ServeResponse healthy =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 0));
  EXPECT_TRUE(healthy.status.ok());
  EXPECT_GE(server.metrics().GetCounter("serve.dispatch_failed")->Value(), 1);
}

TEST_F(ChaosTest, BrokenCacheDegradesToRecomputationNeverWrongData) {
  const InferenceSession& session = Shared().model.session();
  const std::vector<float> want =
      session.PredictProbabilities(TaskKind::kType, 2);

  ServerOptions options;
  options.cache.enabled = true;
  InferenceServer server(session, options);
  // Warm the entry, then break every lookup.
  ASSERT_TRUE(
      server.ServeSync(MakeRequest(ServeMethod::kPredictProbabilities, 2))
          .status.ok());
  ArmedFault fault("serve.cache.lookup", util::StatusCode::kIoError);
  for (int i = 0; i < 4; ++i) {
    const ServeResponse response =
        server.ServeSync(MakeRequest(ServeMethod::kPredictProbabilities, 2));
    ASSERT_TRUE(response.status.ok());
    EXPECT_FALSE(response.cache_hit);  // Faulted lookups report misses...
    EXPECT_EQ(response.probabilities, want);  // ...and recompute exactly.
  }
  EXPECT_EQ(server.cache()->hits(), 0);
  EXPECT_GE(server.cache()->misses(), 5);
}

TEST_F(ChaosTest, QuotaExhaustionStormNeverStarvesTheInteractiveTenant) {
  const InferenceSession& session = Shared().model.session();
  TenantRegistry tenants;
  TenantOptions storm;
  storm.name = "storm";
  storm.priority = Priority::kBackground;
  storm.quota_rps = 0.001;  // Two requests, then dry for the whole test.
  storm.burst = 2.0;
  const int storm_id = tenants.Register(storm);

  ServerOptions options;
  options.tenants = &tenants;
  InferenceServer server(session, options);

  std::atomic<int> storm_ok{0}, storm_shed{0}, storm_other{0};
  std::thread flood([&] {
    for (int i = 0; i < 64; ++i) {
      const ServeResponse response = server.ServeSync(
          MakeRequest(ServeMethod::kPredict, i % 4, storm_id));
      if (response.status.ok()) {
        storm_ok.fetch_add(1);
      } else if (response.status.code() ==
                 util::StatusCode::kResourceExhausted) {
        storm_shed.fetch_add(1);
      } else {
        storm_other.fetch_add(1);
      }
    }
  });
  // The interactive default tenant serves normally through the storm.
  for (int i = 0; i < 16; ++i) {
    const ServeResponse response =
        server.ServeSync(MakeRequest(ServeMethod::kPredict, i % 4));
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  flood.join();
  EXPECT_EQ(storm_ok.load(), 2);    // Exactly the burst.
  EXPECT_EQ(storm_shed.load(), 62); // Everything else, typed, at admission.
  EXPECT_EQ(storm_other.load(), 0);
  EXPECT_EQ(tenants.quota_rejections(storm_id), 62);
}

TEST_F(ChaosTest, CheckpointLoadFaultMidSwapLeavesOldGenerationServing) {
  const SharedModel& shared = Shared();
  const InferenceSession& session = shared.model.session();
  const std::string checkpoint = ::testing::TempDir() + "/chaos_swap.bin";
  ASSERT_TRUE(shared.model.SaveWeights(checkpoint).ok());

  InferenceServer server(session);
  const ServeResponse before =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 1));
  ASSERT_TRUE(before.status.ok());

  {
    ArmedFault fault("swap.load_weights", util::StatusCode::kIoError);
    const util::StatusOr<std::unique_ptr<ExplainTiModel>> replica =
        core::LoadReplicaForSwap(SharedModel::MakeConfig(), shared.corpus,
                                 checkpoint);
    ASSERT_FALSE(replica.ok());
    EXPECT_EQ(replica.status().code(), util::StatusCode::kIoError);
  }
  // The rollout never reached the server: generation 1 keeps serving,
  // bit-identically.
  EXPECT_EQ(server.current_generation(), 1u);
  const ServeResponse after =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 1));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.labels, before.labels);
  EXPECT_EQ(after.model_generation, 1u);

  // With the fault cleared the same rollout succeeds end to end.
  util::StatusOr<std::unique_ptr<ExplainTiModel>> replica =
      core::LoadReplicaForSwap(SharedModel::MakeConfig(), shared.corpus,
                               checkpoint);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  ASSERT_TRUE(server.SwapSession(replica.value()->session()).ok());
  EXPECT_EQ(server.current_generation(), 2u);
  const ServeResponse swapped =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 1));
  ASSERT_TRUE(swapped.status.ok());
  // Same weights via the checkpoint round-trip: identical predictions.
  EXPECT_EQ(swapped.labels, before.labels);
  EXPECT_EQ(swapped.model_generation, 2u);
}

TEST_F(ChaosTest, ForcedAnnDegradationDuringSwapAnnotatesNotCorrupts) {
  const SharedModel& shared = Shared();
  const InferenceSession& session = shared.model.session();
  // A second generation with identical weights (checkpoint round-trip)
  // so explanations stay comparable across the swap.
  const std::string checkpoint = ::testing::TempDir() + "/chaos_ann_swap.bin";
  ASSERT_TRUE(shared.model.SaveWeights(checkpoint).ok());
  util::StatusOr<std::unique_ptr<ExplainTiModel>> replica =
      core::LoadReplicaForSwap(SharedModel::MakeConfig(), shared.corpus,
                               checkpoint);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();

  ServerOptions options;
  options.num_workers = 2;
  InferenceServer server(session, options);

  // Live Explain traffic while the ANN tier is down *and* the model hot-
  // swaps underneath: every response must stay OK — annotated as
  // degraded, served from the exact flat fallback, never corrupted.
  ArmedFault fault("ann.query", util::StatusCode::kInternal);
  std::atomic<bool> stop{false};
  std::atomic<int> served{0};
  std::vector<std::string> failures(2);
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ServeResponse response = server.ServeSync(
            MakeRequest(ServeMethod::kExplain, (c + i++) % 4));
        if (!response.status.ok()) {
          failures[static_cast<size_t>(c)] = response.status.ToString();
          return;
        }
        if (!response.explanation.global.empty() &&
            !response.explanation.ann_degraded) {
          failures[static_cast<size_t>(c)] = "degradation note missing";
          return;
        }
        served.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(server.SwapSession(replica.value()->session()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < 2; ++c) {
    EXPECT_EQ(failures[static_cast<size_t>(c)], "") << "client " << c;
  }
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(server.current_generation(), 2u);
}

}  // namespace
}  // namespace explainti::serve
