// Property-style sweeps across randomly generated inputs: invariants that
// must hold for any corpus, any vocabulary, and any query — parameterized
// over seeds and sizes with TEST_P.

#include <cstdio>
#include <fstream>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "data/csv_loader.h"
#include "data/git_generator.h"
#include "data/wiki_generator.h"
#include "eval/f1_metrics.h"
#include "text/serializer.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace explainti {
namespace {

// ---------------------------------------------------------------------------
// Serialisation invariants over whole generated corpora.
// ---------------------------------------------------------------------------

struct CorpusCase {
  std::string name;
  uint64_t seed;
  bool git;
  int max_len;
};

class SerializationPropertyTest
    : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(SerializationPropertyTest, EverySampleIsWellFormed) {
  const CorpusCase param = GetParam();
  data::TableCorpus corpus;
  if (param.git) {
    data::GitTableOptions options;
    options.num_tables = 25;
    options.min_rows = 5;
    options.max_rows = 15;
    options.seed = param.seed;
    corpus = data::GenerateGitTableCorpus(options);
  } else {
    data::WikiTableOptions options;
    options.num_tables = 40;
    options.seed = param.seed;
    corpus = data::GenerateWikiTableCorpus(options);
  }

  // Vocabulary over the whole corpus.
  std::unordered_map<std::string, int64_t> counts;
  for (const data::Table& table : corpus.tables) {
    for (const std::string& t : text::BasicTokenize(table.title)) ++counts[t];
    for (const data::Column& column : table.columns) {
      for (const std::string& t : text::BasicTokenize(column.header)) {
        ++counts[t];
      }
      for (const std::string& cell : column.cells) {
        for (const std::string& t : text::BasicTokenize(cell)) ++counts[t];
      }
    }
  }
  auto vocab = std::make_shared<text::Vocab>(text::BuildVocab(counts, 6000));
  text::WordPieceTokenizer tokenizer(vocab);
  text::SequenceSerializer serializer(&tokenizer, param.max_len);

  for (const data::TypeSample& sample : corpus.type_samples) {
    const text::EncodedSequence seq =
        serializer.SerializeColumn(corpus.ColumnTextOf(sample));
    ASSERT_GE(seq.ids.size(), 3u);
    ASSERT_LE(seq.ids.size(), static_cast<size_t>(param.max_len));
    EXPECT_EQ(seq.ids.front(), text::SpecialTokens::kCls);
    EXPECT_EQ(seq.ids.back(), text::SpecialTokens::kSep);
    ASSERT_EQ(seq.ids.size(), seq.segments.size());
    ASSERT_EQ(seq.ids.size(), seq.tokens.size());
    for (int id : seq.ids) {
      ASSERT_GE(id, 0);
      ASSERT_LT(id, vocab->size());
    }
  }
  for (const data::RelationSample& sample : corpus.relation_samples) {
    const text::EncodedSequence seq = serializer.SerializePair(
        corpus.ColumnTextOf(sample.table_index, sample.left_column),
        corpus.ColumnTextOf(sample.table_index, sample.right_column));
    ASSERT_LE(seq.ids.size(), static_cast<size_t>(param.max_len));
    ASSERT_GT(seq.sep_pos, 0);
    ASSERT_LT(seq.sep_pos, static_cast<int>(seq.ids.size()) - 1);
    // Both sides non-empty.
    EXPECT_GT(seq.sep_pos, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpora, SerializationPropertyTest,
    ::testing::Values(CorpusCase{"wiki_a", 3, false, 40},
                      CorpusCase{"wiki_b", 17, false, 24},
                      CorpusCase{"wiki_c", 91, false, 64},
                      CorpusCase{"git_a", 5, true, 40},
                      CorpusCase{"git_b", 23, true, 32}),
    [](const ::testing::TestParamInfo<CorpusCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Tokenizer round-trip property: detokenised subwords rebuild the word.
// ---------------------------------------------------------------------------

class TokenizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerPropertyTest, SubwordsReassembleToOriginalWord) {
  data::WikiTableOptions options;
  options.num_tables = 20;
  options.seed = GetParam();
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);

  std::unordered_map<std::string, int64_t> counts;
  std::vector<std::string> words;
  for (const data::Table& table : corpus.tables) {
    for (const data::Column& column : table.columns) {
      for (const std::string& cell : column.cells) {
        for (const std::string& t : text::BasicTokenize(cell)) {
          ++counts[t];
          words.push_back(t);
        }
      }
    }
  }
  // Deliberately small vocabulary to force subword decomposition.
  auto vocab = std::make_shared<text::Vocab>(
      text::BuildVocab(counts, /*max_size=*/300, /*min_count=*/3));
  text::ByteFallbackTokenizer tokenizer(vocab);

  for (size_t i = 0; i < words.size(); i += 7) {
    const std::string& word = words[i];
    std::string rebuilt;
    for (const std::string& piece : tokenizer.Tokenize(word)) {
      ASSERT_NE(piece, "[UNK]") << "byte fallback must never emit UNK";
      rebuilt += piece.size() > 2 && piece[0] == '#' && piece[1] == '#'
                     ? piece.substr(2)
                     : piece;
    }
    EXPECT_EQ(rebuilt, word);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerPropertyTest,
                         ::testing::Values(1, 22, 333));

// ---------------------------------------------------------------------------
// ANN properties: result validity for any query, any index size.
// ---------------------------------------------------------------------------

class AnnPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AnnPropertyTest, ResultsAreValidUniqueAndOrdered) {
  const int n = GetParam();
  ann::HnswIndex index;
  util::Rng rng(static_cast<uint64_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<float> v(12);
    for (float& x : v) x = static_cast<float>(rng.Normal());
    index.Add(i * 3, v);  // Non-dense external ids.
  }
  for (int q = 0; q < 10; ++q) {
    std::vector<float> query(12);
    for (float& x : query) x = static_cast<float>(rng.Normal());
    const auto hits = index.Search(query, 7);
    EXPECT_LE(hits.size(), std::min<size_t>(7, static_cast<size_t>(n)));
    std::set<int64_t> seen;
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].id % 3, 0) << "unknown external id";
      EXPECT_TRUE(seen.insert(hits[i].id).second) << "duplicate result";
      if (i > 0) {
        EXPECT_GE(hits[i - 1].similarity, hits[i].similarity);
      }
      EXPECT_GE(hits[i].similarity, -1.0f - 1e-5f);
      EXPECT_LE(hits[i].similarity, 1.0f + 1e-5f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AnnPropertyTest,
                         ::testing::Values(1, 3, 17, 128, 700));

// ---------------------------------------------------------------------------
// F1 against a brute-force reference on random prediction sets.
// ---------------------------------------------------------------------------

eval::F1Scores ReferenceF1(
    const std::vector<eval::LabeledPrediction>& predictions, int num_labels) {
  // Direct per-label precision/recall computation, written independently
  // of the production implementation.
  eval::F1Scores out;
  double tp_all = 0;
  double fp_all = 0;
  double fn_all = 0;
  double macro = 0;
  double weighted = 0;
  double support_total = 0;
  for (int label = 0; label < num_labels; ++label) {
    double tp = 0;
    double fp = 0;
    double fn = 0;
    for (const auto& p : predictions) {
      const bool in_gold =
          std::find(p.gold.begin(), p.gold.end(), label) != p.gold.end();
      const bool in_pred =
          std::find(p.predicted.begin(), p.predicted.end(), label) !=
          p.predicted.end();
      tp += in_gold && in_pred;
      fp += !in_gold && in_pred;
      fn += in_gold && !in_pred;
    }
    const double precision = tp + fp > 0 ? tp / (tp + fp) : 0;
    const double recall = tp + fn > 0 ? tp / (tp + fn) : 0;
    const double f1 = precision + recall > 0
                          ? 2 * precision * recall / (precision + recall)
                          : 0;
    macro += f1;
    weighted += f1 * (tp + fn);
    support_total += tp + fn;
    tp_all += tp;
    fp_all += fp;
    fn_all += fn;
  }
  const double micro_p = tp_all + fp_all > 0 ? tp_all / (tp_all + fp_all) : 0;
  const double micro_r = tp_all + fn_all > 0 ? tp_all / (tp_all + fn_all) : 0;
  out.micro = micro_p + micro_r > 0
                  ? 2 * micro_p * micro_r / (micro_p + micro_r)
                  : 0;
  out.macro = macro / num_labels;
  out.weighted = support_total > 0 ? weighted / support_total : 0;
  return out;
}

class F1PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(F1PropertyTest, MatchesBruteForceReference) {
  util::Rng rng(GetParam());
  constexpr int kLabels = 8;
  std::vector<eval::LabeledPrediction> predictions;
  for (int i = 0; i < 60; ++i) {
    eval::LabeledPrediction p;
    const int gold_count = 1 + static_cast<int>(rng.UniformInt(2));
    const int pred_count = static_cast<int>(rng.UniformInt(3));
    std::set<int> gold;
    while (static_cast<int>(gold.size()) < gold_count) {
      gold.insert(static_cast<int>(rng.UniformInt(kLabels)));
    }
    std::set<int> pred;
    while (static_cast<int>(pred.size()) < pred_count) {
      pred.insert(static_cast<int>(rng.UniformInt(kLabels)));
    }
    p.gold.assign(gold.begin(), gold.end());
    p.predicted.assign(pred.begin(), pred.end());
    predictions.push_back(std::move(p));
  }
  const eval::F1Scores actual = eval::ComputeF1(predictions, kLabels);
  const eval::F1Scores expected = ReferenceF1(predictions, kLabels);
  EXPECT_NEAR(actual.micro, expected.micro, 1e-9);
  EXPECT_NEAR(actual.macro, expected.macro, 1e-9);
  EXPECT_NEAR(actual.weighted, expected.weighted, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, F1PropertyTest,
                         ::testing::Values(11, 222, 3333, 44444));

// ---------------------------------------------------------------------------
// CSV loader hostility sweep: corrupted byte-strings through
// LoadTableFromCsv. Every outcome is acceptable — a loaded table or a
// non-OK Status — except a crash or abort.
// ---------------------------------------------------------------------------

namespace csv_fuzz {

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Loads `bytes` as a CSV file; the table must be well-formed when the
/// loader reports success.
void ExpectLoadSurvives(const std::string& path, const std::string& bytes) {
  WriteBytes(path, bytes);
  const util::StatusOr<data::Table> table = data::LoadTableFromCsv(path);
  if (table.ok()) {
    EXPECT_FALSE(table->columns.empty());
    for (const data::Column& column : table->columns) {
      EXPECT_EQ(column.cells.size(), table->columns[0].cells.size());
    }
  } else {
    EXPECT_FALSE(table.status().ToString().empty());
  }
}

}  // namespace csv_fuzz

TEST(CsvFuzzTest, HostileInputsReturnInvalidArgument) {
  const std::string path = "/tmp/explainti_csv_hostile.csv";
  const auto load = [&](const std::string& bytes) {
    csv_fuzz::WriteBytes(path, bytes);
    return data::LoadTableFromCsv(path);
  };

  // Unterminated quoted field.
  auto r = load("a,b\n\"never closed,1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);

  // Embedded NUL byte.
  r = load(std::string("a,b\nx,\0y\n", 9));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);

  // A single cell larger than the 1 MiB cap.
  r = load("a,b\n" + std::string((1 << 20) + 64, 'x') + ",1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);

  // Zero-column first row (blank line up top).
  r = load("\nx,y\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);

  // Empty file.
  r = load("");
  EXPECT_FALSE(r.ok());

  std::remove(path.c_str());
}

TEST(CsvFuzzTest, MutatedInputsNeverAbort) {
  const std::string kSeed =
      "name,age,city,notes\n"
      "alice,30,\"new york\",\"said \"\"hi\"\"\"\n"
      "bob,41,paris,\n"
      "carol,29,\"lima, peru\",ok\n";
  const char kAlphabet[] = {'"', ',',  '\n', '\r', '\0', '\x7f',
                            '\xff', '\t', 'a',  '0',  ';',  '|'};
  const std::string path = "/tmp/explainti_csv_fuzz.csv";
  util::Rng rng(0xC57FC57FULL);

  for (int iter = 0; iter < 1000; ++iter) {
    std::string bytes = kSeed;
    const int mutations = 1 + static_cast<int>(rng.UniformInt(8));
    for (int m = 0; m < mutations && !bytes.empty(); ++m) {
      const size_t pos = static_cast<size_t>(rng.UniformInt(bytes.size()));
      switch (rng.UniformInt(5)) {
        case 0:  // Overwrite with a hostile byte.
          bytes[pos] = kAlphabet[rng.UniformInt(sizeof(kAlphabet))];
          break;
        case 1:  // Insert a hostile byte.
          bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                       kAlphabet[rng.UniformInt(sizeof(kAlphabet))]);
          break;
        case 2:  // Delete a span.
          bytes.erase(pos, 1 + rng.UniformInt(4));
          break;
        case 3:  // Truncate (torn write).
          bytes.resize(pos);
          break;
        case 4: {  // Duplicate a chunk elsewhere.
          const std::string chunk =
              bytes.substr(pos, 1 + rng.UniformInt(8));
          const size_t at =
              static_cast<size_t>(rng.UniformInt(bytes.size() + 1));
          bytes.insert(at, chunk);
          break;
        }
      }
    }
    SCOPED_TRACE("fuzz iteration " + std::to_string(iter));
    csv_fuzz::ExpectLoadSurvives(path, bytes);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace explainti
