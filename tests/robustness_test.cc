#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "core/checkpoint.h"
#include "core/embedding_store.h"
#include "core/explain_ti_model.h"
#include "data/wiki_generator.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

namespace explainti::core {
namespace {

using util::fault::FaultKind;
using util::fault::FaultRegistry;
using util::fault::FaultSpec;

data::TableCorpus TinyCorpus() {
  data::WikiTableOptions options;
  options.num_tables = 40;
  return data::GenerateWikiTableCorpus(options);
}

ExplainTiConfig TinyConfig() {
  ExplainTiConfig config;
  config.epochs = 2;
  config.pretrain_epochs = 1;
  config.sample_size = 4;
  config.top_k = 3;
  return config;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

/// Every test leaves the process-wide registry clean.
class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Fault registry scheduling.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, UnarmedSitesAreInert) {
  EXPECT_TRUE(FAULT_POINT("test.never.armed").ok());
  EXPECT_FALSE(
      util::fault::ShouldInject("test.never.armed", FaultKind::kNan));
  EXPECT_EQ(FaultRegistry::Instance().hits("test.never.armed"), 0);
}

TEST_F(RobustnessTest, FiresOnEveryNthHit) {
  FaultSpec spec;
  spec.every_n = 3;
  FaultRegistry::Instance().Arm("test.sched", spec);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    const util::Status status = FAULT_POINT("test.sched");
    if (!status.ok()) {
      ++fired;
      EXPECT_EQ(status.code(), util::StatusCode::kIoError);
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(FaultRegistry::Instance().hits("test.sched"), 9);
  EXPECT_EQ(FaultRegistry::Instance().fires("test.sched"), 3);
}

TEST_F(RobustnessTest, MaxFiresSelfDisarms) {
  FaultSpec spec;
  spec.max_fires = 2;
  FaultRegistry::Instance().Arm("test.fuse", spec);
  EXPECT_FALSE(FAULT_POINT("test.fuse").ok());
  EXPECT_FALSE(FAULT_POINT("test.fuse").ok());
  EXPECT_TRUE(FAULT_POINT("test.fuse").ok());
  EXPECT_FALSE(FaultRegistry::Instance().AnyArmed());
}

TEST_F(RobustnessTest, DisarmRestoresNormalOperation) {
  FaultSpec spec;
  FaultRegistry::Instance().Arm("test.off", spec);
  EXPECT_FALSE(FAULT_POINT("test.off").ok());
  FaultRegistry::Instance().Disarm("test.off");
  EXPECT_TRUE(FAULT_POINT("test.off").ok());
}

TEST_F(RobustnessTest, MaybeCorruptPoisonsTheBuffer) {
  FaultSpec spec;
  spec.kind = FaultKind::kNan;
  FaultRegistry::Instance().Arm("test.nan", spec);
  std::vector<float> buffer(4, 1.0f);
  EXPECT_TRUE(util::fault::MaybeCorrupt("test.nan", buffer.data(),
                                        static_cast<int64_t>(buffer.size())));
  for (float v : buffer) EXPECT_TRUE(std::isnan(v));
  // A site armed with a different kind never corrupts.
  std::vector<float> safe(4, 1.0f);
  EXPECT_FALSE(util::fault::MaybeCorrupt("test.sched2", safe.data(), 4));
  EXPECT_EQ(safe[0], 1.0f);
}

// ---------------------------------------------------------------------------
// Checkpoint integrity.
// ---------------------------------------------------------------------------

Checkpoint MakeCheckpoint() {
  Checkpoint ckpt;
  ckpt.next_epoch = 3;
  ckpt.schedule_step = 77;
  ckpt.best_valid_f1 = 0.5f;
  ckpt.best_epoch = 2;
  ckpt.params = {{1.0f, 2.0f}, {3.0f}};
  ckpt.best_params = {{0.5f, 1.5f}, {2.5f}};
  ckpt.opt_step_count = 42;
  ckpt.opt_m = {{0.1f, 0.2f}, {0.3f}};
  ckpt.opt_v = {{0.01f, 0.02f}, {0.03f}};
  return ckpt;
}

TEST_F(RobustnessTest, CheckpointRoundTrips) {
  const std::string path = "/tmp/explainti_ckpt_roundtrip.bin";
  const Checkpoint ckpt = MakeCheckpoint();
  ASSERT_TRUE(SaveCheckpoint(path, ckpt).ok());
  util::StatusOr<Checkpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->next_epoch, ckpt.next_epoch);
  EXPECT_EQ(loaded->schedule_step, ckpt.schedule_step);
  EXPECT_EQ(loaded->best_valid_f1, ckpt.best_valid_f1);
  EXPECT_EQ(loaded->best_epoch, ckpt.best_epoch);
  EXPECT_EQ(loaded->params, ckpt.params);
  EXPECT_EQ(loaded->best_params, ckpt.best_params);
  EXPECT_EQ(loaded->opt_step_count, ckpt.opt_step_count);
  EXPECT_EQ(loaded->opt_m, ckpt.opt_m);
  EXPECT_EQ(loaded->opt_v, ckpt.opt_v);
  std::remove(path.c_str());
}

TEST_F(RobustnessTest, CheckpointMissingIsNotFound) {
  util::StatusOr<Checkpoint> loaded =
      LoadCheckpoint("/tmp/explainti_no_such_checkpoint.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST_F(RobustnessTest, CheckpointCorruptedByteRejected) {
  const std::string path = "/tmp/explainti_ckpt_corrupt.bin";
  ASSERT_TRUE(SaveCheckpoint(path, MakeCheckpoint()).ok());
  std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5A);
  WriteFile(path, bytes);
  util::StatusOr<Checkpoint> loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(RobustnessTest, CheckpointTruncationRejected) {
  const std::string path = "/tmp/explainti_ckpt_trunc.bin";
  ASSERT_TRUE(SaveCheckpoint(path, MakeCheckpoint()).ok());
  const std::string bytes = ReadFile(path);
  // Cut at several depths, including inside the header and inside the
  // parameter payload; every truncation must be rejected, never crash.
  for (size_t keep : {size_t{0}, size_t{4}, size_t{12}, bytes.size() / 2,
                      bytes.size() - 1}) {
    WriteFile(path, bytes.substr(0, keep));
    util::StatusOr<Checkpoint> loaded = LoadCheckpoint(path);
    EXPECT_FALSE(loaded.ok()) << "accepted a " << keep << "-byte prefix";
  }
  std::remove(path.c_str());
}

TEST_F(RobustnessTest, CheckpointWriteFaultLeavesNoPartialFile) {
  const std::string path = "/tmp/explainti_ckpt_fault.bin";
  std::remove(path.c_str());
  FaultSpec spec;
  spec.code = util::StatusCode::kIoError;
  FaultRegistry::Instance().Arm("checkpoint.write", spec);
  const util::Status status = SaveCheckpoint(path, MakeCheckpoint());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kIoError);
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Embedding-store degradation ladder.
// ---------------------------------------------------------------------------

void FillStore(EmbeddingStore& store, std::vector<int>& ids,
               std::vector<std::vector<float>>& embeddings) {
  util::Rng rng(7);
  for (int i = 0; i < 32; ++i) {
    ids.push_back(i);
    std::vector<float> v(8);
    for (float& x : v) x = static_cast<float>(rng.Normal());
    embeddings.push_back(std::move(v));
  }
  store.Rebuild(ids, embeddings);
}

TEST_F(RobustnessTest, QueryFaultFallsBackToExactFlatSearch) {
  EmbeddingStore store;
  std::vector<int> ids;
  std::vector<std::vector<float>> embeddings;
  FillStore(store, ids, embeddings);
  ASSERT_TRUE(store.hnsw_ready());

  const std::vector<float>& query = embeddings[3];
  bool used_fallback = true;
  const auto healthy = store.Search(query, 3, /*exclude_id=*/-1,
                                    &used_fallback);
  EXPECT_FALSE(used_fallback);
  ASSERT_FALSE(healthy.empty());

  FaultSpec spec;
  FaultRegistry::Instance().Arm("ann.query", spec);
  const auto degraded = store.Search(query, 3, /*exclude_id=*/-1,
                                     &used_fallback);
  EXPECT_TRUE(used_fallback);
  EXPECT_GE(store.degraded_searches(), 1);
  ASSERT_FALSE(degraded.empty());

  // The fallback is the exact index: its top-1 matches a reference
  // FlatIndex built over the same vectors.
  ann::FlatIndex reference;
  for (size_t i = 0; i < ids.size(); ++i) {
    reference.Add(ids[i], embeddings[i]);
  }
  const auto expected = reference.Search(query, 3);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(degraded[0].id, expected[0].id);
}

TEST_F(RobustnessTest, AbortedHnswBuildServesFromFlatTier) {
  FaultSpec spec;
  spec.every_n = 10;  // Abort the HNSW build on its 10th insertion.
  FaultRegistry::Instance().Arm("store.build", spec);

  EmbeddingStore store;
  std::vector<int> ids;
  std::vector<std::vector<float>> embeddings;
  FillStore(store, ids, embeddings);
  FaultRegistry::Instance().DisarmAll();

  EXPECT_FALSE(store.hnsw_ready());
  EXPECT_EQ(store.size(), 32);  // The flat tier stored everything.
  bool used_fallback = false;
  const auto hits = store.Search(embeddings[0], 3, /*exclude_id=*/-1,
                                 &used_fallback);
  EXPECT_TRUE(used_fallback);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, 0);  // Exact search finds the query itself first.
}

TEST_F(RobustnessTest, BuildFaultDegradesOneSegmentNotTheStore) {
  // Segment-granular degradation: a "store.build" fault that fires once
  // during a 4-segment rebuild aborts exactly one segment's HNSW build.
  // The other segments keep their graphs, and the store keeps answering
  // (flagged as fallback, since one shard serves flat).
  FaultSpec spec;
  spec.every_n = 10;
  spec.max_fires = 1;
  FaultRegistry::Instance().Arm("store.build", spec);

  EmbeddingStore::Options options;
  options.num_segments = 4;
  EmbeddingStore store(options);
  std::vector<int> ids;
  std::vector<std::vector<float>> embeddings;
  FillStore(store, ids, embeddings);
  FaultRegistry::Instance().DisarmAll();

  const EmbeddingStore::View view = store.view();
  ASSERT_EQ(view.num_segments(), 4);
  int degraded_segments = 0;
  for (int shard = 0; shard < 4; ++shard) {
    if (!view.segment_hnsw_ready(shard)) ++degraded_segments;
  }
  EXPECT_EQ(degraded_segments, 1);
  EXPECT_FALSE(view.hnsw_ready());

  // Every query still answers; any query is flagged because one shard of
  // the fan-out degraded.
  bool used_fallback = false;
  const auto hits = view.Search(embeddings[5], 3, /*exclude_id=*/-1,
                                &used_fallback);
  EXPECT_TRUE(used_fallback);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, 5);

  // A fault-free rebuild with identical content heals the degraded
  // segment (it is NOT copy-on-write-reused in its broken state) and
  // reuses the three healthy ones.
  store.Rebuild(ids, embeddings);
  EXPECT_TRUE(store.hnsw_ready());
  EXPECT_EQ(store.last_rebuild_stats().segments_built, 1);
  EXPECT_EQ(store.last_rebuild_stats().segments_reused, 3);
}

TEST_F(RobustnessTest, QueryFaultDegradesShardsIndependently) {
  EmbeddingStore::Options options;
  options.num_segments = 4;
  EmbeddingStore store(options);
  std::vector<int> ids;
  std::vector<std::vector<float>> embeddings;
  FillStore(store, ids, embeddings);
  ASSERT_TRUE(store.hnsw_ready());

  // Fire on every second shard query: some shards of each fan-out answer
  // from HNSW, some from flat — the merged result must still be correct.
  FaultSpec spec;
  spec.every_n = 2;
  FaultRegistry::Instance().Arm("ann.query", spec);
  bool used_fallback = false;
  const auto hits = store.Search(embeddings[9], 3, /*exclude_id=*/-1,
                                 &used_fallback);
  FaultRegistry::Instance().DisarmAll();
  EXPECT_TRUE(used_fallback);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, 9);
  EXPECT_GE(store.degraded_searches(), 1);
}

TEST_F(RobustnessTest, EmptyStoreSearchReturnsNothing) {
  EmbeddingStore store;
  bool used_fallback = false;
  EXPECT_TRUE(store.Search({1.0f, 0.0f}, 3, -1, &used_fallback).empty());
}

// ---------------------------------------------------------------------------
// Hardened training pipeline. One fault-free baseline model is trained for
// the whole suite; faulty runs are compared against it.
// ---------------------------------------------------------------------------

class TrainingRobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new data::TableCorpus(TinyCorpus());
    baseline_ = new ExplainTiModel(TinyConfig(), *corpus_);
    baseline_stats_ = new FitStats(baseline_->Fit());
  }
  static void TearDownTestSuite() {
    delete baseline_stats_;
    delete baseline_;
    delete corpus_;
    baseline_stats_ = nullptr;
    baseline_ = nullptr;
    corpus_ = nullptr;
  }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }

  static data::TableCorpus* corpus_;
  static ExplainTiModel* baseline_;
  static FitStats* baseline_stats_;
};

data::TableCorpus* TrainingRobustnessTest::corpus_ = nullptr;
ExplainTiModel* TrainingRobustnessTest::baseline_ = nullptr;
FitStats* TrainingRobustnessTest::baseline_stats_ = nullptr;

TEST_F(TrainingRobustnessTest, BaselineIsHealthy) {
  EXPECT_EQ(baseline_stats_->skipped_steps, 0);
  EXPECT_EQ(baseline_stats_->rollbacks, 0);
  EXPECT_FALSE(baseline_stats_->resumed);
  EXPECT_TRUE(std::isfinite(baseline_stats_->best_valid_f1));
}

TEST_F(TrainingRobustnessTest, SurvivesNanGradientsEveryFifthStep) {
  FaultSpec spec;
  spec.kind = FaultKind::kNan;
  spec.every_n = 5;
  FaultRegistry::Instance().Arm("optimizer.step", spec);

  ExplainTiModel faulty(TinyConfig(), *corpus_);
  const FitStats stats = faulty.Fit();
  FaultRegistry::Instance().DisarmAll();

  EXPECT_GT(stats.skipped_steps, 0);
  EXPECT_TRUE(std::isfinite(stats.best_valid_f1));

  const double base_f1 =
      baseline_->Evaluate(TaskKind::kType, data::SplitPart::kTest).weighted;
  const double faulty_f1 =
      faulty.Evaluate(TaskKind::kType, data::SplitPart::kTest).weighted;
  EXPECT_TRUE(std::isfinite(faulty_f1));
  // Skipping the poisoned steps costs at most a few points of F1.
  EXPECT_NEAR(faulty_f1, base_f1, 0.05);
}

TEST_F(TrainingRobustnessTest, RollsBackAfterConsecutiveBadSteps) {
  FaultSpec spec;
  spec.kind = FaultKind::kNan;
  spec.every_n = 1;
  spec.max_fires = 6;
  FaultRegistry::Instance().Arm("optimizer.step", spec);

  ExplainTiConfig config = TinyConfig();
  config.max_bad_steps = 3;
  ExplainTiModel model(config, *corpus_);
  const FitStats stats = model.Fit();
  FaultRegistry::Instance().DisarmAll();

  // Six consecutive poisoned steps, rolled back after the 3rd and 6th.
  EXPECT_EQ(stats.skipped_steps, 6);
  EXPECT_EQ(stats.rollbacks, 2);
  EXPECT_TRUE(std::isfinite(stats.best_valid_f1));
  const double f1 =
      model.Evaluate(TaskKind::kType, data::SplitPart::kTest).weighted;
  EXPECT_TRUE(std::isfinite(f1));
}

TEST_F(TrainingRobustnessTest, ResumesFromCheckpoint) {
  const std::string path = "/tmp/explainti_resume_test.ckpt";
  std::remove(path.c_str());
  ExplainTiConfig config = TinyConfig();
  config.checkpoint_path = path;

  ExplainTiModel first(config, *corpus_);
  const FitStats first_stats = first.Fit();
  EXPECT_FALSE(first_stats.resumed);
  ASSERT_TRUE(FileExists(path));

  // A second model over the same corpus resumes: no pre-training, no
  // fine-tuning epochs left, and identical final weights.
  ExplainTiModel second(config, *corpus_);
  const FitStats second_stats = second.Fit();
  EXPECT_TRUE(second_stats.resumed);
  EXPECT_EQ(second_stats.pretrain_seconds, 0.0);
  EXPECT_NEAR(second_stats.best_valid_f1, first_stats.best_valid_f1, 1e-6);
  const double f1_first =
      first.Evaluate(TaskKind::kType, data::SplitPart::kTest).weighted;
  const double f1_second =
      second.Evaluate(TaskKind::kType, data::SplitPart::kTest).weighted;
  EXPECT_NEAR(f1_second, f1_first, 1e-6);
  std::remove(path.c_str());
}

TEST_F(TrainingRobustnessTest, CorruptedCheckpointFallsBackToScratch) {
  const std::string path = "/tmp/explainti_resume_corrupt.ckpt";
  std::remove(path.c_str());
  ExplainTiConfig config = TinyConfig();
  config.checkpoint_path = path;

  ExplainTiModel first(config, *corpus_);
  first.Fit();
  ASSERT_TRUE(FileExists(path));
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0xFF);
  WriteFile(path, bytes);

  ExplainTiModel second(config, *corpus_);
  const FitStats stats = second.Fit();
  EXPECT_FALSE(stats.resumed);  // Corruption detected; trained from scratch.
  EXPECT_TRUE(std::isfinite(stats.best_valid_f1));
  std::remove(path.c_str());
}

TEST_F(TrainingRobustnessTest, ExplainDegradesGracefullyOnQueryFault) {
  const TaskData& task = baseline_->task_data(TaskKind::kType);
  const int sample = task.test_ids.front();
  const Explanation healthy = baseline_->Explain(TaskKind::kType, sample);
  EXPECT_FALSE(healthy.ann_degraded);

  FaultSpec spec;
  FaultRegistry::Instance().Arm("ann.query", spec);
  const Explanation degraded = baseline_->Explain(TaskKind::kType, sample);
  FaultRegistry::Instance().DisarmAll();

  EXPECT_TRUE(degraded.ann_degraded);
  EXPECT_FALSE(degraded.degradation_note.empty());
  // The explanation is still complete: all three views populated, same
  // prediction, and the exact fallback agrees with HNSW on the most
  // influential sample.
  EXPECT_EQ(degraded.predicted_labels, healthy.predicted_labels);
  ASSERT_FALSE(degraded.global.empty());
  EXPECT_FALSE(degraded.local.empty());
  EXPECT_FALSE(degraded.structural.empty());
  ASSERT_FALSE(healthy.global.empty());
  EXPECT_EQ(degraded.global[0].train_sample_id,
            healthy.global[0].train_sample_id);
}

TEST_F(TrainingRobustnessTest, ExplainCompleteAfterAbortedStoreBuild) {
  FaultSpec spec;
  spec.every_n = 5;  // Abort every HNSW build partway through.
  FaultRegistry::Instance().Arm("store.build", spec);
  ExplainTiModel model(TinyConfig(), *corpus_);
  model.Fit();
  FaultRegistry::Instance().DisarmAll();

  const TaskData& task = model.task_data(TaskKind::kType);
  const Explanation z = model.Explain(TaskKind::kType, task.test_ids.front());
  EXPECT_TRUE(z.ann_degraded);
  EXPECT_FALSE(z.degradation_note.empty());
  EXPECT_FALSE(z.predicted_labels.empty());
  EXPECT_FALSE(z.local.empty());
  EXPECT_FALSE(z.global.empty());
  EXPECT_FALSE(z.structural.empty());
}

}  // namespace
}  // namespace explainti::core
