// Finite-difference verification of every differentiable op's backward
// pass — the correctness bedrock of the whole training pipeline.

#include "tensor/gradcheck.h"

#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace explainti::tensor {
namespace {

struct GradCase {
  std::string name;
  // Builds (inputs, loss_fn) pair; loss_fn must re-read input values.
  std::function<std::pair<std::vector<Tensor>,
                          std::function<Tensor()>>()>
      make;
};

std::vector<Tensor> MakeInputs(const std::vector<Shape>& shapes,
                               uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Tensor> inputs;
  for (const Shape& shape : shapes) {
    Tensor t = Tensor::Randn(shape, rng, 0.8f);
    t.set_requires_grad(true);
    inputs.push_back(t);
  }
  return inputs;
}

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  auto [inputs, loss_fn] = GetParam().make();
  const GradCheckResult result = GradCheck(loss_fn, inputs, 1e-2f);
  EXPECT_GT(result.entries_checked, 0);
  EXPECT_LT(result.max_rel_error, 0.05f)
      << GetParam().name << ": max abs error " << result.max_abs_error;
}

std::vector<GradCase> AllCases() {
  std::vector<GradCase> cases;

  cases.push_back({"add", [] {
    auto inputs = MakeInputs({{3, 4}, {3, 4}}, 1);
    auto fn = [inputs] { return Sum(Add(inputs[0], inputs[1])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"add_broadcast", [] {
    auto inputs = MakeInputs({{3, 4}, {4}}, 2);
    auto fn = [inputs] {
      return Mean(Mul(Add(inputs[0], inputs[1]), Add(inputs[0], inputs[1])));
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"sub_mul", [] {
    auto inputs = MakeInputs({{2, 3}, {2, 3}}, 3);
    auto fn = [inputs] { return Sum(Mul(Sub(inputs[0], inputs[1]), inputs[0])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"mul_broadcast", [] {
    auto inputs = MakeInputs({{3, 4}, {4}}, 4);
    auto fn = [inputs] { return Sum(Mul(inputs[0], inputs[1])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"scale_addscalar", [] {
    auto inputs = MakeInputs({{5}}, 5);
    auto fn = [inputs] { return Sum(AddScalar(Scale(inputs[0], 1.7f), 0.3f)); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"matmul", [] {
    auto inputs = MakeInputs({{3, 4}, {4, 2}}, 6);
    auto fn = [inputs] { return Sum(MatMul(inputs[0], inputs[1])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"matmul_vec", [] {
    auto inputs = MakeInputs({{4}, {4, 3}}, 7);
    auto fn = [inputs] { return Sum(MatMul(inputs[0], inputs[1])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"transpose", [] {
    auto inputs = MakeInputs({{3, 2}}, 8);
    auto fn = [inputs] {
      return Sum(MatMul(Transpose(inputs[0]), inputs[0]));
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"dot", [] {
    auto inputs = MakeInputs({{5}, {5}}, 9);
    auto fn = [inputs] { return Dot(inputs[0], inputs[1]); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"l2_normalize", [] {
    auto inputs = MakeInputs({{5}, {5}}, 10);
    auto fn = [inputs] { return Dot(L2Normalize(inputs[0]), inputs[1]); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"reshape_slice", [] {
    auto inputs = MakeInputs({{4, 3}}, 11);
    auto fn = [inputs] {
      return Sum(SliceRows(Reshape(inputs[0], {3, 4}), 1, 3));
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"slice_cols", [] {
    auto inputs = MakeInputs({{3, 6}}, 12);
    auto fn = [inputs] {
      return Mean(Mul(SliceCols(inputs[0], 1, 4), SliceCols(inputs[0], 2, 5)));
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"concat", [] {
    auto inputs = MakeInputs({{3}, {4}}, 13);
    auto fn = [inputs] {
      Tensor c = Concat(inputs[0], inputs[1]);
      return Sum(Mul(c, c));
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"concat_rows_cols", [] {
    auto inputs = MakeInputs({{2, 3}, {2, 3}}, 14);
    auto fn = [inputs] {
      return Sum(ConcatCols({ConcatRows({inputs[0], inputs[1]}),
                             ConcatRows({inputs[1], inputs[0]})}));
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"stack_meanrows", [] {
    auto inputs = MakeInputs({{4}, {4}, {4}}, 15);
    auto fn = [inputs] {
      Tensor stacked = Stack({inputs[0], inputs[1], inputs[2]});
      return Sum(Mul(MeanRows(stacked), MeanRows(stacked)));
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"relu", [] {
    auto inputs = MakeInputs({{6}}, 16);
    auto fn = [inputs] { return Sum(Relu(inputs[0])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"gelu", [] {
    auto inputs = MakeInputs({{6}}, 17);
    auto fn = [inputs] { return Sum(Gelu(inputs[0])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"tanh", [] {
    auto inputs = MakeInputs({{6}}, 18);
    auto fn = [inputs] { return Sum(TanhOp(inputs[0])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"sigmoid", [] {
    auto inputs = MakeInputs({{6}}, 19);
    auto fn = [inputs] { return Sum(Mul(SigmoidOp(inputs[0]), inputs[0])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"softmax", [] {
    auto inputs = MakeInputs({{2, 5}, {2, 5}}, 20);
    auto fn = [inputs] { return Sum(Mul(Softmax(inputs[0]), inputs[1])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"log_softmax", [] {
    auto inputs = MakeInputs({{2, 5}, {2, 5}}, 21);
    auto fn = [inputs] { return Sum(Mul(LogSoftmax(inputs[0]), inputs[1])); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"layer_norm", [] {
    auto inputs = MakeInputs({{3, 6}, {6}, {6}}, 22);
    auto fn = [inputs] {
      return Sum(Mul(LayerNorm(inputs[0], inputs[1], inputs[2]), inputs[0]));
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"embedding", [] {
    auto inputs = MakeInputs({{5, 3}}, 23);
    auto fn = [inputs] {
      Tensor e = EmbeddingLookup(inputs[0], {0, 2, 2, 4});
      return Sum(Mul(e, e));
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"cross_entropy", [] {
    auto inputs = MakeInputs({{6}}, 24);
    auto fn = [inputs] { return CrossEntropyLoss(inputs[0], 2); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"soft_cross_entropy", [] {
    auto inputs = MakeInputs({{4}}, 25);
    auto fn = [inputs] {
      return SoftCrossEntropyLoss(inputs[0], {0.1f, 0.2f, 0.3f, 0.4f});
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"bce_with_logits", [] {
    auto inputs = MakeInputs({{4}}, 26);
    auto fn = [inputs] {
      return BceWithLogitsLoss(inputs[0], {1.0f, 0.0f, 1.0f, 0.0f});
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"nll_from_probs", [] {
    auto inputs = MakeInputs({{4}}, 27);
    auto fn = [inputs] { return NllFromProbs(Softmax(inputs[0]), 1); };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});
  cases.push_back({"bce_from_probs", [] {
    auto inputs = MakeInputs({{4}}, 28);
    auto fn = [inputs] {
      return BceFromProbs(SigmoidOp(inputs[0]), {0.0f, 1.0f, 1.0f, 0.0f});
    };
    return std::make_pair(inputs, std::function<Tensor()>(fn));
  }});

  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, GradCheckTest,
                         ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<GradCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace explainti::tensor
