#include <memory>

#include <gtest/gtest.h>

#include "baselines/column_features.h"
#include "baselines/doduo.h"
#include "baselines/feature_mlp.h"
#include "baselines/posthoc.h"
#include "baselines/self_explain.h"
#include "baselines/tabert.h"
#include "baselines/tcn.h"
#include "baselines/turl.h"
#include "data/wiki_generator.h"
#include "text/vocab.h"

namespace explainti::baselines {
namespace {

data::TableCorpus TinyCorpus() {
  data::WikiTableOptions options;
  options.num_tables = 32;
  return data::GenerateWikiTableCorpus(options);
}

TransformerBaselineConfig TinyConfig() {
  TransformerBaselineConfig config;
  config.epochs = 1;
  config.pretrain_epochs = 1;
  return config;
}

TEST(ColumnFeaturesTest, DimensionIsStable) {
  ColumnFeatureExtractor extractor;
  EXPECT_EQ(static_cast<int>(extractor.Extract({"a", "b"}).size()),
            extractor.dim());
  EXPECT_EQ(static_cast<int>(extractor.Extract({}).size()), extractor.dim());
}

TEST(ColumnFeaturesTest, NumericColumnsLookNumeric) {
  ColumnFeatureExtractor extractor;
  const auto numeric = extractor.Extract({"123", "456", "789"});
  const auto textual = extractor.Extract({"abc", "def", "ghi"});
  // Stats block: fraction-numeric lives at charset+1+3.
  const size_t numeric_fraction_index = 36 + 1 + 3;
  EXPECT_GT(numeric[numeric_fraction_index], 0.9f);
  EXPECT_LT(textual[numeric_fraction_index], 0.1f);
}

TEST(ColumnFeaturesTest, DistinctRatioReflectsDuplicates) {
  ColumnFeatureExtractor extractor;
  const size_t distinct_index = 36 + 1 + 5;
  const auto distinct = extractor.Extract({"a", "b", "c", "d"});
  const auto duplicated = extractor.Extract({"a", "a", "a", "a"});
  EXPECT_GT(distinct[distinct_index], duplicated[distinct_index]);
}

TEST(ColumnFeaturesTest, TableTopicIsNormalised) {
  ColumnFeatureExtractor extractor;
  data::Table table{"some title", {data::Column{"h", {"x", "y"}}}};
  const auto topic = extractor.TableTopic(table, 32);
  float total = 0.0f;
  for (float v : topic) total += v;
  EXPECT_NEAR(total, 1.0f, 1e-4f);
}

TEST(FeatureMlpTest, SherlockFitsAndPredicts) {
  const data::TableCorpus corpus = TinyCorpus();
  auto sherlock = MakeSherlock(1);
  sherlock->Fit(corpus);
  EXPECT_TRUE(sherlock->HasTask(core::TaskKind::kType));
  EXPECT_TRUE(sherlock->HasTask(core::TaskKind::kRelation));
  const auto labels = sherlock->Predict(core::TaskKind::kType, 0);
  EXPECT_FALSE(labels.empty());
  const eval::F1Scores f1 = EvaluateInterpreter(
      *sherlock, corpus, core::TaskKind::kType, data::SplitPart::kTrain);
  EXPECT_GT(f1.micro, 0.15);  // Learns something on its own training data.
}

TEST(FeatureMlpTest, SatoUsesTopicFeatures) {
  const data::TableCorpus corpus = TinyCorpus();
  auto sato = MakeSato(2);
  sato->Fit(corpus);
  EXPECT_EQ(sato->name(), "Sato");
  EXPECT_FALSE(sato->Predict(core::TaskKind::kType, 0).empty());
}

// Shared fixture: one fitted Doduo for the transformer-baseline and
// post-hoc tests.
class FittedDoduoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new data::TableCorpus(TinyCorpus());
    doduo_ = new Doduo(TinyConfig());
    doduo_->Fit(*corpus_);
  }
  static void TearDownTestSuite() {
    delete doduo_;
    delete corpus_;
    doduo_ = nullptr;
    corpus_ = nullptr;
  }
  static data::TableCorpus* corpus_;
  static Doduo* doduo_;
};

data::TableCorpus* FittedDoduoTest::corpus_ = nullptr;
Doduo* FittedDoduoTest::doduo_ = nullptr;

TEST_F(FittedDoduoTest, SupportsBothTasks) {
  EXPECT_TRUE(doduo_->HasTask(core::TaskKind::kType));
  EXPECT_TRUE(doduo_->HasTask(core::TaskKind::kRelation));
}

TEST_F(FittedDoduoTest, PredictionsDecodeToValidLabels) {
  const core::TaskData& task = doduo_->task_data(core::TaskKind::kType);
  for (int id : task.test_ids) {
    for (int label : doduo_->Predict(core::TaskKind::kType, id)) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, task.num_labels);
    }
  }
}

TEST_F(FittedDoduoTest, SaliencyScoresCoverEveryToken) {
  const core::TaskData& task = doduo_->task_data(core::TaskKind::kType);
  const int id = task.test_ids[0];
  const std::vector<float> scores =
      doduo_->TokenSaliency(core::TaskKind::kType, id);
  EXPECT_EQ(scores.size(),
            task.samples[static_cast<size_t>(id)].seq.ids.size());
  float total = 0.0f;
  for (float s : scores) {
    EXPECT_GE(s, 0.0f);
    total += s;
  }
  EXPECT_GT(total, 0.0f);
}

TEST_F(FittedDoduoTest, SaliencyExplanationReturnsTopTokens) {
  const auto tokens =
      SaliencyExplanation(*doduo_, core::TaskKind::kType,
                          doduo_->task_data(core::TaskKind::kType).test_ids[0],
                          5);
  EXPECT_LE(tokens.size(), 5u);
  EXPECT_FALSE(tokens.empty());
  for (const std::string& token : tokens) {
    EXPECT_NE(token, "[CLS]");
    EXPECT_NE(token, "[SEP]");
  }
}

TEST_F(FittedDoduoTest, InfluenceFunctionsRankTrainSamples) {
  InfluenceFunctions influence(*doduo_, core::TaskKind::kType);
  const core::TaskData& task = doduo_->task_data(core::TaskKind::kType);
  const auto top = influence.TopInfluential(task.test_ids[0], 3);
  EXPECT_EQ(top.size(), 3u);
  for (int train_id : top) {
    EXPECT_TRUE(task.IsTrainSample(train_id));
  }
  EXPECT_FALSE(influence.ExplanationText(top[0]).empty());
}

TEST_F(FittedDoduoTest, InfluenceExcludesSelfForTrainQueries) {
  InfluenceFunctions influence(*doduo_, core::TaskKind::kType);
  const core::TaskData& task = doduo_->task_data(core::TaskKind::kType);
  const int train_id = task.train_ids[0];
  for (int id : influence.TopInfluential(train_id, 5)) {
    EXPECT_NE(id, train_id);
  }
}

TEST(TaBertTest, SerializationUsesContentSnapshot) {
  const data::TableCorpus corpus = TinyCorpus();
  TaBert tabert(TinyConfig());
  tabert.Fit(corpus);
  const core::TaskData& task = tabert.task_data(core::TaskKind::kType);
  // TaBERT's layout has a mid-sequence [SEP] splitting target from the
  // content snapshot (segment flips to 1).
  const core::TaskSample& sample = task.samples[0];
  EXPECT_EQ(sample.seq.ids.front(), text::SpecialTokens::kCls);
  EXPECT_EQ(sample.seq.segments.back(),
            sample.seq.ids.size() > 6 ? 1 : sample.seq.segments.back());
  EXPECT_FALSE(tabert.Predict(core::TaskKind::kType, 0).empty());
}

TEST(TurlTest, VisibilityMaskHasThreeRegions) {
  const data::TableCorpus corpus = TinyCorpus();
  Turl turl(TinyConfig());
  turl.Fit(corpus);
  EXPECT_FALSE(turl.Predict(core::TaskKind::kType, 0).empty());
  EXPECT_FALSE(turl.Predict(core::TaskKind::kRelation, 0).empty());
}

TEST(TcnTest, RunsWithPositionalContext) {
  const data::TableCorpus corpus = TinyCorpus();
  Tcn tcn(TinyConfig());
  tcn.Fit(corpus);
  EXPECT_FALSE(tcn.Predict(core::TaskKind::kType, 0).empty());
  EXPECT_FALSE(tcn.Predict(core::TaskKind::kRelation, 0).empty());
}

TEST(SelfExplainTest, ProducesLocalAndGlobalExplanations) {
  const data::TableCorpus corpus = TinyCorpus();
  auto self_explain = MakeSelfExplain(TinyConfig());
  self_explain->Fit(corpus);
  const core::TaskData& task =
      self_explain->task_data(core::TaskKind::kType);
  const int id = task.test_ids[0];

  const auto chunks =
      self_explain->TopLocalChunks(core::TaskKind::kType, id, 3);
  EXPECT_FALSE(chunks.empty());
  EXPECT_LE(chunks.size(), 3u);

  const auto global =
      self_explain->TopGlobalSamples(core::TaskKind::kType, id, 3);
  EXPECT_FALSE(global.empty());
  for (int train_id : global) {
    EXPECT_TRUE(task.IsTrainSample(train_id));
  }
}

TEST(EvaluateInterpreterTest, ComputesF1OverSplit) {
  const data::TableCorpus corpus = TinyCorpus();
  auto sherlock = MakeSherlock(3);
  sherlock->Fit(corpus);
  const eval::F1Scores f1 = EvaluateInterpreter(
      *sherlock, corpus, core::TaskKind::kType, data::SplitPart::kTest);
  EXPECT_GE(f1.micro, 0.0);
  EXPECT_LE(f1.micro, 1.0);
}

}  // namespace
}  // namespace explainti::baselines
