#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/embedding_store.h"
#include "core/explain_ti_model.h"
#include "core/task_data.h"
#include "data/wiki_generator.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace explainti::core {
namespace {

data::TableCorpus TinyCorpus() {
  data::WikiTableOptions options;
  options.num_tables = 40;
  return data::GenerateWikiTableCorpus(options);
}

ExplainTiConfig TinyConfig() {
  ExplainTiConfig config;
  config.epochs = 2;
  config.pretrain_epochs = 1;
  config.sample_size = 4;
  config.top_k = 3;
  return config;
}

std::shared_ptr<text::Vocab> CorpusVocab(const data::TableCorpus& corpus) {
  std::unordered_map<std::string, int64_t> counts;
  for (const data::Table& table : corpus.tables) {
    for (const std::string& token : text::BasicTokenize(table.title)) {
      ++counts[token];
    }
    for (const data::Column& column : table.columns) {
      for (const std::string& token : text::BasicTokenize(column.header)) {
        ++counts[token];
      }
      for (const std::string& cell : column.cells) {
        for (const std::string& token : text::BasicTokenize(cell)) {
          ++counts[token];
        }
      }
    }
  }
  return std::make_shared<text::Vocab>(text::BuildVocab(counts, 4000));
}

TEST(EmbeddingStoreTest, RebuildAndLookup) {
  EmbeddingStore store;
  store.Rebuild({3, 7}, {{1.0f, 0.0f}, {0.0f, 1.0f}});
  EXPECT_EQ(store.size(), 2);
  EXPECT_TRUE(store.Contains(3));
  EXPECT_FALSE(store.Contains(5));
  // Embedding rows are borrowed from a pinned View (there is deliberately
  // no store-level pass-through; the row must outlive no snapshot swap).
  const EmbeddingStore::View view = store.view();
  EXPECT_EQ(view.Embedding(7).ToVector(), (std::vector<float>{0.0f, 1.0f}));
}

TEST(EmbeddingStoreTest, SearchExcludesRequestedId) {
  EmbeddingStore store;
  store.Rebuild({0, 1, 2},
                {{1.0f, 0.0f}, {0.9f, 0.1f}, {0.0f, 1.0f}});
  const auto hits = store.Search({1.0f, 0.0f}, 2, /*exclude_id=*/0);
  ASSERT_EQ(hits.size(), 2u);
  for (const auto& hit : hits) EXPECT_NE(hit.id, 0);
  EXPECT_EQ(hits[0].id, 1);
}

TEST(EmbeddingStoreTest, RebuildReplacesContents) {
  EmbeddingStore store;
  store.Rebuild({0}, {{1.0f, 0.0f}});
  store.Rebuild({1}, {{0.0f, 1.0f}});
  EXPECT_EQ(store.size(), 1);
  EXPECT_FALSE(store.Contains(0));
  EXPECT_TRUE(store.Contains(1));
}

TEST(EmbeddingStoreTest, ViewPinsOneGenerationAcrossRebuilds) {
  EmbeddingStore store;
  store.Rebuild({0}, {{1.0f, 0.0f}});
  const EmbeddingStore::View old_view = store.view();
  EXPECT_EQ(old_view.generation(), 1u);

  store.Rebuild({1}, {{0.0f, 1.0f}});
  // The pinned view still serves its whole generation — lookups, search,
  // and membership all answer from the snapshot taken, never a mix.
  EXPECT_EQ(old_view.size(), 1);
  EXPECT_TRUE(old_view.Contains(0));
  EXPECT_FALSE(old_view.Contains(1));
  EXPECT_EQ(old_view.Embedding(0).ToVector(), (std::vector<float>{1.0f, 0.0f}));
  const auto old_hits = old_view.Search({1.0f, 0.0f}, 1);
  ASSERT_EQ(old_hits.size(), 1u);
  EXPECT_EQ(old_hits[0].id, 0);

  // A view taken after the rebuild sees only the new generation.
  const EmbeddingStore::View new_view = store.view();
  EXPECT_EQ(new_view.generation(), 2u);
  EXPECT_FALSE(new_view.Contains(0));
  EXPECT_TRUE(new_view.Contains(1));
}

TEST(EmbeddingStoreTest, ViewBeforeFirstRebuildIsEmpty) {
  EmbeddingStore store;
  const EmbeddingStore::View view = store.view();
  EXPECT_EQ(view.generation(), 0u);
  EXPECT_EQ(view.size(), 0);
  EXPECT_FALSE(view.Contains(0));
  EXPECT_FALSE(view.hnsw_ready());
  EXPECT_TRUE(view.Search({1.0f, 0.0f}, 3).empty());
}

TEST(TaskDataTest, TypeTaskConstruction) {
  const data::TableCorpus corpus = TinyCorpus();
  auto vocab = CorpusVocab(corpus);
  text::WordPieceTokenizer tokenizer(vocab);
  text::SequenceSerializer serializer(&tokenizer, 40);
  const TaskData task = BuildTypeTaskData(corpus, serializer);

  EXPECT_EQ(task.kind, TaskKind::kType);
  EXPECT_TRUE(task.multi_label);
  EXPECT_EQ(task.samples.size(), corpus.type_samples.size());
  EXPECT_EQ(task.graph.num_samples(),
            static_cast<int>(corpus.type_samples.size()));
  EXPECT_EQ(task.train_ids.size() + task.valid_ids.size() +
                task.test_ids.size(),
            task.samples.size());
  for (int id : task.train_ids) EXPECT_TRUE(task.IsTrainSample(id));
  for (int id : task.test_ids) EXPECT_FALSE(task.IsTrainSample(id));
  // Every serialised sample is well-formed.
  for (const TaskSample& sample : task.samples) {
    EXPECT_EQ(sample.seq.ids.front(), text::SpecialTokens::kCls);
    EXPECT_EQ(sample.seq.ids.back(), text::SpecialTokens::kSep);
    EXPECT_FALSE(sample.labels.empty());
  }
}

TEST(TaskDataTest, RelationTaskConstruction) {
  const data::TableCorpus corpus = TinyCorpus();
  auto vocab = CorpusVocab(corpus);
  text::WordPieceTokenizer tokenizer(vocab);
  text::SequenceSerializer serializer(&tokenizer, 40);
  const TaskData task = BuildRelationTaskData(corpus, serializer);
  EXPECT_EQ(task.kind, TaskKind::kRelation);
  EXPECT_FALSE(task.multi_label);
  for (const TaskSample& sample : task.samples) {
    EXPECT_GT(sample.seq.sep_pos, 0);
    EXPECT_EQ(sample.labels.size(), 1u);
  }
}

TEST(TaskDataTest, SampleTextMergesSubwords) {
  const data::TableCorpus corpus = TinyCorpus();
  auto vocab = CorpusVocab(corpus);
  text::WordPieceTokenizer tokenizer(vocab);
  text::SequenceSerializer serializer(&tokenizer, 40);
  const TaskData task = BuildTypeTaskData(corpus, serializer);
  const std::string text = task.SampleText(0);
  EXPECT_EQ(text.find("[CLS]"), std::string::npos);
  EXPECT_EQ(text.find("##"), std::string::npos);
  EXPECT_NE(text.find("title"), std::string::npos);
}

// Shared fixture: one small trained model reused by all explanation
// invariant tests (training is the expensive part).
class TrainedModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new data::TableCorpus(TinyCorpus());
    model_ = new ExplainTiModel(TinyConfig(), *corpus_);
    model_->Fit();
  }
  static void TearDownTestSuite() {
    delete model_;
    delete corpus_;
    model_ = nullptr;
    corpus_ = nullptr;
  }

  static data::TableCorpus* corpus_;
  static ExplainTiModel* model_;
};

data::TableCorpus* TrainedModelTest::corpus_ = nullptr;
ExplainTiModel* TrainedModelTest::model_ = nullptr;

TEST_F(TrainedModelTest, HasBothTasks) {
  EXPECT_TRUE(model_->HasTask(TaskKind::kType));
  EXPECT_TRUE(model_->HasTask(TaskKind::kRelation));
}

TEST_F(TrainedModelTest, PredictReturnsValidLabels) {
  const TaskData& task = model_->task_data(TaskKind::kType);
  for (int id : task.test_ids) {
    const std::vector<int> labels = model_->Predict(TaskKind::kType, id);
    ASSERT_FALSE(labels.empty());
    for (int label : labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, task.num_labels);
    }
  }
}

TEST_F(TrainedModelTest, ProbabilitiesAreValid) {
  const std::vector<float> probs = model_->PredictProbabilities(
      TaskKind::kRelation, model_->task_data(TaskKind::kRelation).test_ids[0]);
  float total = 0.0f;
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
    total += p;
  }
  EXPECT_NEAR(total, 1.0f, 1e-4f);  // Relation task uses softmax.
}

TEST_F(TrainedModelTest, LocalRelevanceScoresFormDistribution) {
  const TaskData& task = model_->task_data(TaskKind::kType);
  const Explanation z = model_->Explain(TaskKind::kType, task.test_ids[0]);
  ASSERT_FALSE(z.local.empty());
  float total = 0.0f;
  for (const LocalExplanation& e : z.local) {
    EXPECT_GE(e.relevance, 0.0f);
    total += e.relevance;
  }
  EXPECT_NEAR(total, 1.0f, 1e-3f);
  // Sorted descending.
  for (size_t i = 1; i < z.local.size(); ++i) {
    EXPECT_GE(z.local[i - 1].relevance, z.local[i].relevance);
  }
  EXPECT_FALSE(z.local[0].text.empty());
}

TEST_F(TrainedModelTest, GlobalInfluenceScoresFormDistribution) {
  const TaskData& task = model_->task_data(TaskKind::kType);
  const Explanation z = model_->Explain(TaskKind::kType, task.test_ids[0]);
  ASSERT_FALSE(z.global.empty());
  float total = 0.0f;
  for (const GlobalExplanation& e : z.global) {
    EXPECT_GE(e.influence, 0.0f);
    EXPECT_TRUE(task.IsTrainSample(e.train_sample_id))
        << "GE must retrieve training samples";
    total += e.influence;
  }
  EXPECT_NEAR(total, 1.0f, 1e-3f);
}

TEST_F(TrainedModelTest, GlobalExcludesSelfForTrainSamples) {
  const TaskData& task = model_->task_data(TaskKind::kType);
  const int train_id = task.train_ids[0];
  const Explanation z = model_->Explain(TaskKind::kType, train_id);
  for (const GlobalExplanation& e : z.global) {
    EXPECT_NE(e.train_sample_id, train_id);
  }
}

TEST_F(TrainedModelTest, StructuralNeighborsAreTrainSamplesWithAttention) {
  const TaskData& task = model_->task_data(TaskKind::kType);
  const Explanation z = model_->Explain(TaskKind::kType, task.test_ids[0]);
  ASSERT_FALSE(z.structural.empty());
  float total = 0.0f;
  for (const StructuralExplanation& e : z.structural) {
    total += e.attention;
    if (e.via != graph::BridgeKind::kSelf) {
      EXPECT_TRUE(task.IsTrainSample(e.neighbor_sample_id));
    }
  }
  EXPECT_NEAR(total, 1.0f, 1e-3f);
}

TEST_F(TrainedModelTest, RelationExplanationsHavePairwiseWindows) {
  const TaskData& task = model_->task_data(TaskKind::kRelation);
  const Explanation z =
      model_->Explain(TaskKind::kRelation, task.test_ids[0]);
  ASSERT_FALSE(z.local.empty());
  EXPECT_GE(z.local[0].window_start2, 0)
      << "relation concepts must be window pairs";
}

TEST_F(TrainedModelTest, EvaluateBeatsRandomGuessing) {
  const eval::F1Scores f1 =
      model_->Evaluate(TaskKind::kType, data::SplitPart::kTest);
  // 30 labels; random multi-label guessing sits near zero.
  EXPECT_GT(f1.micro, 0.10);
}

TEST(ExplainTiModelTest, AblationConfigsRun) {
  const data::TableCorpus corpus = TinyCorpus();
  for (int variant = 0; variant < 4; ++variant) {
    ExplainTiConfig config = TinyConfig();
    config.epochs = 1;
    config.use_local = variant != 0;
    config.use_global = variant != 1;
    config.use_structural = variant != 2;
    config.dedup_cells = variant == 3;
    ExplainTiModel model(config, corpus);
    model.Fit();
    const std::vector<int> labels = model.Predict(
        TaskKind::kType, model.task_data(TaskKind::kType).test_ids[0]);
    EXPECT_FALSE(labels.empty());
  }
}

TEST(ExplainTiModelTest, RobertaBaseModelRuns) {
  const data::TableCorpus corpus = TinyCorpus();
  ExplainTiConfig config = TinyConfig();
  config.base_model = "roberta";
  config.epochs = 1;
  ExplainTiModel model(config, corpus);
  model.Fit();
  const Explanation z = model.Explain(
      TaskKind::kType, model.task_data(TaskKind::kType).test_ids[0]);
  EXPECT_FALSE(z.predicted_labels.empty());
}

}  // namespace
}  // namespace explainti::core
