#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/corpus.h"
#include "data/git_generator.h"
#include "data/value_pools.h"
#include "data/wiki_generator.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace explainti::data {
namespace {

WikiTableOptions SmallWiki() {
  WikiTableOptions options;
  options.num_tables = 60;
  return options;
}

GitTableOptions SmallGit() {
  GitTableOptions options;
  options.num_tables = 40;
  options.min_rows = 10;
  options.max_rows = 20;
  return options;
}

TEST(WikiGeneratorTest, ProducesRequestedTables) {
  const TableCorpus corpus = GenerateWikiTableCorpus(SmallWiki());
  EXPECT_EQ(corpus.tables.size(), 60u);
  EXPECT_TRUE(corpus.type_multi_label);
  EXPECT_GT(corpus.type_samples.size(), corpus.tables.size());
  EXPECT_FALSE(corpus.relation_samples.empty());
  EXPECT_GE(corpus.type_label_names.size(), 20u);
  EXPECT_GE(corpus.relation_label_names.size(), 10u);
}

TEST(WikiGeneratorTest, DeterministicPerSeed) {
  const TableCorpus a = GenerateWikiTableCorpus(SmallWiki());
  const TableCorpus b = GenerateWikiTableCorpus(SmallWiki());
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].title, b.tables[i].title);
    ASSERT_EQ(a.tables[i].columns.size(), b.tables[i].columns.size());
  }
  EXPECT_EQ(a.type_samples.size(), b.type_samples.size());
}

TEST(WikiGeneratorTest, DifferentSeedsDiffer) {
  WikiTableOptions other = SmallWiki();
  other.seed = 999;
  const TableCorpus a = GenerateWikiTableCorpus(SmallWiki());
  const TableCorpus b = GenerateWikiTableCorpus(other);
  int differing = 0;
  for (size_t i = 0; i < std::min(a.tables.size(), b.tables.size()); ++i) {
    differing += a.tables[i].title != b.tables[i].title;
  }
  EXPECT_GT(differing, 0);
}

TEST(WikiGeneratorTest, SampleIndicesAreValid) {
  const TableCorpus corpus = GenerateWikiTableCorpus(SmallWiki());
  for (const TypeSample& s : corpus.type_samples) {
    ASSERT_GE(s.table_index, 0);
    ASSERT_LT(s.table_index, static_cast<int>(corpus.tables.size()));
    const Table& table = corpus.tables[static_cast<size_t>(s.table_index)];
    ASSERT_GE(s.column_index, 0);
    ASSERT_LT(s.column_index, static_cast<int>(table.columns.size()));
    for (int label : s.labels) {
      ASSERT_GE(label, 0);
      ASSERT_LT(label, static_cast<int>(corpus.type_label_names.size()));
    }
  }
  for (const RelationSample& s : corpus.relation_samples) {
    const Table& table = corpus.tables[static_cast<size_t>(s.table_index)];
    ASSERT_LT(s.left_column, static_cast<int>(table.columns.size()));
    ASSERT_LT(s.right_column, static_cast<int>(table.columns.size()));
    ASSERT_NE(s.left_column, s.right_column);
    ASSERT_GE(s.label, 0);
    ASSERT_LT(s.label, static_cast<int>(corpus.relation_label_names.size()));
  }
}

TEST(WikiGeneratorTest, FineLabelsCarryCoarseAncestors) {
  const TableCorpus corpus = GenerateWikiTableCorpus(SmallWiki());
  int multi = 0;
  for (const TypeSample& s : corpus.type_samples) {
    if (s.labels.size() >= 2) ++multi;
    std::set<int> unique(s.labels.begin(), s.labels.end());
    EXPECT_EQ(unique.size(), s.labels.size()) << "duplicate labels";
  }
  EXPECT_GT(multi, 0) << "expected multi-label samples (fine + coarse)";
}

TEST(WikiGeneratorTest, EvidenceTokensAppearInColumnSerialization) {
  // The evidence oracle must point at tokens actually present in the
  // sample's own text (title/header/cells) — otherwise the simulated
  // judges would measure nothing.
  const TableCorpus corpus = GenerateWikiTableCorpus(SmallWiki());
  int checked = 0;
  for (const TypeSample& s : corpus.type_samples) {
    if (s.evidence.empty()) continue;
    ++checked;
    const text::ColumnText column = corpus.ColumnTextOf(s);
    std::unordered_set<std::string> tokens;
    for (const std::string& t : text::BasicTokenize(column.title)) {
      tokens.insert(t);
    }
    for (const std::string& t : text::BasicTokenize(column.header)) {
      tokens.insert(t);
    }
    for (const std::string& cell : column.cells) {
      for (const std::string& t : text::BasicTokenize(cell)) tokens.insert(t);
    }
    int present = 0;
    for (const std::string& e : s.evidence) present += tokens.count(e) > 0;
    EXPECT_GT(present, 0) << "no evidence token found in sample text";
  }
  EXPECT_GT(checked, 0);
}

TEST(WikiGeneratorTest, AmbiguityKnobsProduceGenericTitles) {
  WikiTableOptions options = SmallWiki();
  options.num_tables = 200;
  options.generic_title_prob = 0.5;
  const TableCorpus corpus = GenerateWikiTableCorpus(options);
  int generic = 0;
  for (const Table& table : corpus.tables) {
    // Generic titles never contain domain words like "nba" or "films".
    if (table.title.find("nba") == std::string::npos &&
        table.title.find("nfl") == std::string::npos &&
        table.title.find("film") == std::string::npos &&
        table.title.find("countr") == std::string::npos &&
        table.title.find("cities") == std::string::npos) {
      ++generic;
    }
  }
  EXPECT_GT(generic, 40);
}

TEST(GitGeneratorTest, DatabaseTablesShape) {
  const TableCorpus corpus = GenerateGitTableCorpus(SmallGit());
  EXPECT_EQ(corpus.tables.size(), 40u);
  EXPECT_FALSE(corpus.type_multi_label);
  EXPECT_TRUE(corpus.relation_samples.empty());
  for (const TypeSample& s : corpus.type_samples) {
    EXPECT_EQ(s.labels.size(), 1u);
  }
  const CorpusStatistics stats = ComputeStatistics(corpus);
  EXPECT_GE(stats.avg_rows, 10.0);
  EXPECT_GT(stats.avg_cols, 3.0);
}

TEST(GitGeneratorTest, ColumnOrderIsShuffled) {
  // Database exports have no canonical column order; the same label must
  // appear at different positions across tables (this is what defeats
  // TCN's positional aggregation).
  const TableCorpus corpus = GenerateGitTableCorpus(SmallGit());
  std::unordered_map<int, std::set<int>> positions_by_label;
  for (const TypeSample& s : corpus.type_samples) {
    positions_by_label[s.labels[0]].insert(s.column_index);
  }
  int multi_position = 0;
  for (const auto& [label, positions] : positions_by_label) {
    if (positions.size() > 1) ++multi_position;
  }
  EXPECT_GT(multi_position, 5);
}

TEST(SplitTest, PartitionsAllTables) {
  TableCorpus corpus = GenerateWikiTableCorpus(SmallWiki());
  AssignSplits(&corpus, 0.8, 0.1, 7);
  int train = 0;
  int valid = 0;
  int test = 0;
  for (SplitPart part : corpus.table_split) {
    train += part == SplitPart::kTrain;
    valid += part == SplitPart::kValid;
    test += part == SplitPart::kTest;
  }
  EXPECT_EQ(train + valid + test, static_cast<int>(corpus.tables.size()));
  EXPECT_GT(train, valid);
  EXPECT_GT(test, 0);
}

TEST(SplitTest, SampleIdsFollowTableSplit) {
  const TableCorpus corpus = GenerateWikiTableCorpus(SmallWiki());
  const auto train_ids = corpus.TypeSampleIds(SplitPart::kTrain);
  const auto test_ids = corpus.TypeSampleIds(SplitPart::kTest);
  std::set<int> train_set(train_ids.begin(), train_ids.end());
  for (int id : test_ids) EXPECT_EQ(train_set.count(id), 0u);
  EXPECT_EQ(train_ids.size() + test_ids.size() +
                corpus.TypeSampleIds(SplitPart::kValid).size(),
            corpus.type_samples.size());
}

TEST(ValuePoolsTest, CapitalsParallelToCountries) {
  EXPECT_EQ(ValuePools::Countries().size(), ValuePools::Capitals().size());
}

TEST(ValuePoolsTest, GeneratorsAreWellFormed) {
  util::Rng rng(1);
  EXPECT_NE(ValuePools::PersonName(rng).find(' '), std::string::npos);
  EXPECT_TRUE(util::EndsWith(ValuePools::FamilyName(rng), "idae"));
  EXPECT_TRUE(util::EndsWith(ValuePools::EnzymeName(rng), "ase"));
  EXPECT_TRUE(util::StartsWith(ValuePools::Code("sp", rng), "sp-"));
  const std::string year = ValuePools::Year(rng);
  EXPECT_EQ(year.size(), 4u);
}

TEST(StatisticsTest, MatchesHandComputation) {
  TableCorpus corpus;
  corpus.tables.push_back(Table{"t1", {Column{"a", {"1", "2"}}}});
  corpus.tables.push_back(
      Table{"t2", {Column{"b", {"1", "2", "3", "4"}}, Column{"c", {"x"}}}});
  corpus.type_label_names = {"l1", "l2"};
  const CorpusStatistics stats = ComputeStatistics(corpus);
  EXPECT_EQ(stats.num_tables, 2);
  EXPECT_DOUBLE_EQ(stats.avg_rows, 3.0);  // (2 + 4) / 2.
  EXPECT_DOUBLE_EQ(stats.avg_cols, 1.5);
  EXPECT_EQ(stats.num_type_labels, 2);
}

}  // namespace
}  // namespace explainti::data
