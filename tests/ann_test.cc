#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "util/rng.h"

namespace explainti::ann {
namespace {

std::vector<float> RandomVector(int dim, util::Rng& rng) {
  std::vector<float> v(static_cast<size_t>(dim));
  for (float& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

TEST(FlatIndexTest, ExactNearestOnHandBuiltVectors) {
  FlatIndex index;
  index.Add(0, {1.0f, 0.0f});
  index.Add(1, {0.0f, 1.0f});
  index.Add(2, {0.7f, 0.7f});
  const auto hits = index.Search({1.0f, 0.1f}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 0);
  EXPECT_EQ(hits[1].id, 2);
  EXPECT_GT(hits[0].similarity, hits[1].similarity);
}

TEST(FlatIndexTest, CosineIsScaleInvariant) {
  FlatIndex index;
  index.Add(0, {1.0f, 0.0f});
  index.Add(1, {100.0f, 1.0f});
  const auto small = index.Search({0.5f, 0.01f}, 2);
  const auto large = index.Search({50.0f, 1.0f}, 2);
  EXPECT_EQ(small[0].id, large[0].id);
  EXPECT_NEAR(small[0].similarity, large[0].similarity, 1e-4f);
}

TEST(FlatIndexTest, KLargerThanSizeReturnsAll) {
  FlatIndex index;
  index.Add(7, {1.0f, 2.0f});
  EXPECT_EQ(index.Search({1.0f, 2.0f}, 10).size(), 1u);
}

TEST(HnswIndexTest, EmptySearchReturnsNothing) {
  HnswIndex index;
  EXPECT_TRUE(index.Search({}, 5).empty());
}

TEST(HnswIndexTest, SingleElement) {
  HnswIndex index;
  index.Add(42, {1.0f, 0.0f, 0.0f});
  const auto hits = index.Search({1.0f, 0.0f, 0.0f}, 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 42);
  EXPECT_NEAR(hits[0].similarity, 1.0f, 1e-5f);
}

TEST(HnswIndexTest, ExactOnTinySet) {
  // With fewer elements than ef_search, HNSW degenerates to exact search.
  HnswIndex hnsw;
  FlatIndex flat;
  util::Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const auto v = RandomVector(8, rng);
    hnsw.Add(i, v);
    flat.Add(i, v);
  }
  util::Rng query_rng(2);
  for (int q = 0; q < 20; ++q) {
    const auto query = RandomVector(8, query_rng);
    const auto expected = flat.Search(query, 5);
    const auto actual = hnsw.Search(query, 5);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id) << "query " << q << " rank " << i;
    }
  }
}

struct RecallCase {
  int num_vectors;
  int dim;
  int ef_search;
  double min_recall;
};

class HnswRecallTest : public ::testing::TestWithParam<RecallCase> {};

TEST_P(HnswRecallTest, RecallAgainstExactSearch) {
  const RecallCase param = GetParam();
  HnswOptions options;
  options.ef_search = param.ef_search;
  HnswIndex hnsw(options);
  FlatIndex flat;
  util::Rng rng(7);
  for (int i = 0; i < param.num_vectors; ++i) {
    const auto v = RandomVector(param.dim, rng);
    hnsw.Add(i, v);
    flat.Add(i, v);
  }

  constexpr int kQueries = 40;
  constexpr int kTopK = 10;
  util::Rng query_rng(8);
  int hits = 0;
  for (int q = 0; q < kQueries; ++q) {
    const auto query = RandomVector(param.dim, query_rng);
    const auto expected = flat.Search(query, kTopK);
    const auto actual = hnsw.Search(query, kTopK);
    std::unordered_set<int64_t> truth;
    for (const SearchResult& r : expected) truth.insert(r.id);
    for (const SearchResult& r : actual) hits += truth.count(r.id) > 0;
  }
  const double recall =
      static_cast<double>(hits) / (kQueries * kTopK);
  EXPECT_GE(recall, param.min_recall);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HnswRecallTest,
    ::testing::Values(RecallCase{500, 16, 50, 0.90},
                      RecallCase{2000, 32, 50, 0.90},
                      RecallCase{2000, 32, 100, 0.95}),
    [](const ::testing::TestParamInfo<RecallCase>& info) {
      return "n" + std::to_string(info.param.num_vectors) + "_ef" +
             std::to_string(info.param.ef_search);
    });

TEST(HnswIndexTest, DeterministicAcrossInstances) {
  util::Rng rng(3);
  std::vector<std::vector<float>> data;
  for (int i = 0; i < 200; ++i) data.push_back(RandomVector(16, rng));

  HnswIndex a;
  HnswIndex b;
  for (int i = 0; i < 200; ++i) {
    a.Add(i, data[static_cast<size_t>(i)]);
    b.Add(i, data[static_cast<size_t>(i)]);
  }
  const auto query = RandomVector(16, rng);
  const auto hits_a = a.Search(query, 10);
  const auto hits_b = b.Search(query, 10);
  ASSERT_EQ(hits_a.size(), hits_b.size());
  for (size_t i = 0; i < hits_a.size(); ++i) {
    EXPECT_EQ(hits_a[i].id, hits_b[i].id);
  }
}

TEST(HnswIndexTest, SimilaritiesAreSortedDescending) {
  HnswIndex index;
  util::Rng rng(4);
  for (int i = 0; i < 300; ++i) index.Add(i, RandomVector(8, rng));
  const auto hits = index.Search(RandomVector(8, rng), 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].similarity, hits[i].similarity);
  }
}

TEST(HnswIndexTest, BuildsMultipleLevels) {
  HnswIndex index;
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) index.Add(i, RandomVector(8, rng));
  EXPECT_GT(index.max_level(), 0);
}

}  // namespace
}  // namespace explainti::ann
