#include <cmath>
#include <cstring>
#include <string>
#include <unordered_set>

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/index.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/status.h"

namespace explainti::ann {
namespace {

std::vector<float> RandomVector(int dim, util::Rng& rng) {
  std::vector<float> v(static_cast<size_t>(dim));
  for (float& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

TEST(FlatIndexTest, ExactNearestOnHandBuiltVectors) {
  FlatIndex index;
  index.Add(0, {1.0f, 0.0f});
  index.Add(1, {0.0f, 1.0f});
  index.Add(2, {0.7f, 0.7f});
  const auto hits = index.Search({1.0f, 0.1f}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 0);
  EXPECT_EQ(hits[1].id, 2);
  EXPECT_GT(hits[0].similarity, hits[1].similarity);
}

TEST(FlatIndexTest, CosineIsScaleInvariant) {
  FlatIndex index;
  index.Add(0, {1.0f, 0.0f});
  index.Add(1, {100.0f, 1.0f});
  const auto small = index.Search({0.5f, 0.01f}, 2);
  const auto large = index.Search({50.0f, 1.0f}, 2);
  EXPECT_EQ(small[0].id, large[0].id);
  EXPECT_NEAR(small[0].similarity, large[0].similarity, 1e-4f);
}

TEST(FlatIndexTest, KLargerThanSizeReturnsAll) {
  FlatIndex index;
  index.Add(7, {1.0f, 2.0f});
  EXPECT_EQ(index.Search({1.0f, 2.0f}, 10).size(), 1u);
}

TEST(HnswIndexTest, EmptySearchReturnsNothing) {
  HnswIndex index;
  EXPECT_TRUE(index.Search({}, 5).empty());
}

TEST(HnswIndexTest, SingleElement) {
  HnswIndex index;
  index.Add(42, {1.0f, 0.0f, 0.0f});
  const auto hits = index.Search({1.0f, 0.0f, 0.0f}, 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 42);
  EXPECT_NEAR(hits[0].similarity, 1.0f, 1e-5f);
}

TEST(HnswIndexTest, ExactOnTinySet) {
  // With fewer elements than ef_search, HNSW degenerates to exact search.
  HnswIndex hnsw;
  FlatIndex flat;
  util::Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const auto v = RandomVector(8, rng);
    hnsw.Add(i, v);
    flat.Add(i, v);
  }
  util::Rng query_rng(2);
  for (int q = 0; q < 20; ++q) {
    const auto query = RandomVector(8, query_rng);
    const auto expected = flat.Search(query, 5);
    const auto actual = hnsw.Search(query, 5);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id) << "query " << q << " rank " << i;
    }
  }
}

struct RecallCase {
  int num_vectors;
  int dim;
  int ef_search;
  double min_recall;
};

class HnswRecallTest : public ::testing::TestWithParam<RecallCase> {};

TEST_P(HnswRecallTest, RecallAgainstExactSearch) {
  const RecallCase param = GetParam();
  HnswOptions options;
  options.ef_search = param.ef_search;
  HnswIndex hnsw(options);
  FlatIndex flat;
  util::Rng rng(7);
  for (int i = 0; i < param.num_vectors; ++i) {
    const auto v = RandomVector(param.dim, rng);
    hnsw.Add(i, v);
    flat.Add(i, v);
  }

  constexpr int kQueries = 40;
  constexpr int kTopK = 10;
  util::Rng query_rng(8);
  int hits = 0;
  for (int q = 0; q < kQueries; ++q) {
    const auto query = RandomVector(param.dim, query_rng);
    const auto expected = flat.Search(query, kTopK);
    const auto actual = hnsw.Search(query, kTopK);
    std::unordered_set<int64_t> truth;
    for (const SearchResult& r : expected) truth.insert(r.id);
    for (const SearchResult& r : actual) hits += truth.count(r.id) > 0;
  }
  const double recall =
      static_cast<double>(hits) / (kQueries * kTopK);
  EXPECT_GE(recall, param.min_recall);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HnswRecallTest,
    ::testing::Values(RecallCase{500, 16, 50, 0.90},
                      RecallCase{2000, 32, 50, 0.90},
                      RecallCase{2000, 32, 100, 0.95}),
    [](const ::testing::TestParamInfo<RecallCase>& info) {
      return "n" + std::to_string(info.param.num_vectors) + "_ef" +
             std::to_string(info.param.ef_search);
    });

TEST(HnswIndexTest, DeterministicAcrossInstances) {
  util::Rng rng(3);
  std::vector<std::vector<float>> data;
  for (int i = 0; i < 200; ++i) data.push_back(RandomVector(16, rng));

  HnswIndex a;
  HnswIndex b;
  for (int i = 0; i < 200; ++i) {
    a.Add(i, data[static_cast<size_t>(i)]);
    b.Add(i, data[static_cast<size_t>(i)]);
  }
  const auto query = RandomVector(16, rng);
  const auto hits_a = a.Search(query, 10);
  const auto hits_b = b.Search(query, 10);
  ASSERT_EQ(hits_a.size(), hits_b.size());
  for (size_t i = 0; i < hits_a.size(); ++i) {
    EXPECT_EQ(hits_a[i].id, hits_b[i].id);
  }
}

TEST(HnswIndexTest, SimilaritiesAreSortedDescending) {
  HnswIndex index;
  util::Rng rng(4);
  for (int i = 0; i < 300; ++i) index.Add(i, RandomVector(8, rng));
  const auto hits = index.Search(RandomVector(8, rng), 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].similarity, hits[i].similarity);
  }
}

TEST(HnswIndexTest, BuildsMultipleLevels) {
  HnswIndex index;
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) index.Add(i, RandomVector(8, rng));
  EXPECT_GT(index.max_level(), 0);
}

// ---------------------------------------------------------------------------
// Per-segment seed derivation.
// ---------------------------------------------------------------------------

TEST(SeedForSegmentTest, DeterministicPerPair) {
  EXPECT_EQ(SeedForSegment(42, 0), SeedForSegment(42, 0));
  EXPECT_EQ(SeedForSegment(42, 7), SeedForSegment(42, 7));
}

TEST(SeedForSegmentTest, DecorrelatesSiblingSegments) {
  // Sibling segments of one store must all get distinct seeds (identical
  // seeds would give every segment the same level pattern), and no
  // segment should inherit the base seed verbatim.
  std::unordered_set<uint64_t> seen;
  for (int64_t segment = 0; segment < 64; ++segment) {
    const uint64_t seed = SeedForSegment(42, segment);
    EXPECT_NE(seed, 42u);
    EXPECT_TRUE(seen.insert(seed).second) << "collision at " << segment;
  }
}

TEST(SeedForSegmentTest, DependsOnBaseSeed) {
  EXPECT_NE(SeedForSegment(1, 3), SeedForSegment(2, 3));
}

// ---------------------------------------------------------------------------
// Attached storage and graph serialisation.
// ---------------------------------------------------------------------------

/// Normalised row-major payload + ids, the shape a store segment shares
/// with its index tiers.
struct AttachedRows {
  std::vector<int64_t> ids;
  std::vector<float> norm;
  int64_t count = 0;
  int64_t dim = 0;
};

AttachedRows MakeAttachedRows(int count, int dim, uint64_t seed) {
  AttachedRows rows;
  rows.count = count;
  rows.dim = dim;
  rows.norm.resize(static_cast<size_t>(count) * dim);
  util::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    rows.ids.push_back(i);
    const std::vector<float> raw = RandomVector(dim, rng);
    L2NormalizeInto(raw.data(), dim, rows.norm.data() +
                                         static_cast<size_t>(i) * dim);
  }
  return rows;
}

TEST(FlatIndexTest, AttachedSearchMatchesOwnedSearch) {
  const int kDim = 8, kN = 50;
  util::Rng rng(9);
  std::vector<std::vector<float>> raw;
  for (int i = 0; i < kN; ++i) raw.push_back(RandomVector(kDim, rng));

  FlatIndex owned;
  AttachedRows rows;
  rows.count = kN;
  rows.dim = kDim;
  rows.norm.resize(static_cast<size_t>(kN) * kDim);
  for (int i = 0; i < kN; ++i) {
    owned.Add(i, raw[static_cast<size_t>(i)]);
    rows.ids.push_back(i);
    L2NormalizeInto(raw[static_cast<size_t>(i)].data(), kDim,
                    rows.norm.data() + static_cast<size_t>(i) * kDim);
  }
  FlatIndex attached;
  attached.AttachStorage(rows.ids.data(), rows.norm.data(), kN, kDim);

  SearchScratch scratch;
  std::vector<SearchResult> via_scratch;
  for (int q = 0; q < kN; q += 11) {
    const std::vector<float>& query = raw[static_cast<size_t>(q)];
    const auto via_owned = owned.Search(query, 5);
    std::vector<float> qnorm(kDim);
    L2NormalizeInto(query.data(), kDim, qnorm.data());
    attached.SearchNormalized(qnorm.data(), 5, &scratch, &via_scratch);
    ASSERT_EQ(via_owned.size(), via_scratch.size());
    for (size_t i = 0; i < via_owned.size(); ++i) {
      EXPECT_EQ(via_owned[i].id, via_scratch[i].id);
      EXPECT_EQ(via_owned[i].similarity, via_scratch[i].similarity);
    }
  }
}

TEST(HnswIndexTest, AttachedBuildMatchesOwnedBuild) {
  // Add() and AttachStorage()+InsertNode() consume randomness in the same
  // order, so the two build paths must produce byte-identical graphs.
  const int kDim = 8, kN = 120;
  util::Rng rng(13);
  std::vector<std::vector<float>> raw;
  for (int i = 0; i < kN; ++i) raw.push_back(RandomVector(kDim, rng));

  HnswOptions options;
  options.seed = 77;
  HnswIndex owned(options);
  AttachedRows rows;
  rows.count = kN;
  rows.dim = kDim;
  rows.norm.resize(static_cast<size_t>(kN) * kDim);
  for (int i = 0; i < kN; ++i) {
    owned.Add(i, raw[static_cast<size_t>(i)]);
    rows.ids.push_back(i);
    L2NormalizeInto(raw[static_cast<size_t>(i)].data(), kDim,
                    rows.norm.data() + static_cast<size_t>(i) * kDim);
  }
  HnswIndex attached(options);
  attached.AttachStorage(rows.ids.data(), rows.norm.data(), kN, kDim);
  for (int i = 0; i < kN; ++i) attached.InsertNode();

  std::string owned_graph, attached_graph;
  owned.SerializeGraph(&owned_graph);
  attached.SerializeGraph(&attached_graph);
  EXPECT_EQ(owned_graph, attached_graph);
}

TEST(HnswIndexTest, GraphRoundTripIsBitIdentical) {
  const AttachedRows rows = MakeAttachedRows(150, 8, 17);
  HnswOptions options;
  options.M = 6;
  options.ef_construction = 32;
  HnswIndex built(options);
  built.AttachStorage(rows.ids.data(), rows.norm.data(), rows.count,
                      rows.dim);
  for (int64_t i = 0; i < rows.count; ++i) built.InsertNode();

  std::string image;
  built.SerializeGraph(&image);
  HnswIndex loaded(options);
  loaded.AttachStorage(rows.ids.data(), rows.norm.data(), rows.count,
                       rows.dim);
  util::BinaryReader reader(image.data(), image.size());
  ASSERT_TRUE(loaded.LoadGraph(&reader).ok());
  EXPECT_EQ(loaded.graph_size(), rows.count);
  EXPECT_EQ(loaded.max_level(), built.max_level());

  // The restored graph re-serialises to the same bytes and answers every
  // query with the same ids and similarity bits.
  std::string reimage;
  loaded.SerializeGraph(&reimage);
  EXPECT_EQ(image, reimage);
  SearchScratch s1, s2;
  std::vector<SearchResult> h1, h2;
  for (int64_t q = 0; q < rows.count; q += 13) {
    const float* query = rows.norm.data() + static_cast<size_t>(q) * rows.dim;
    built.SearchNormalized(query, 10, &s1, &h1);
    loaded.SearchNormalized(query, 10, &s2, &h2);
    ASSERT_EQ(h1.size(), h2.size());
    for (size_t i = 0; i < h1.size(); ++i) {
      EXPECT_EQ(h1[i].id, h2[i].id);
      EXPECT_EQ(h1[i].similarity, h2[i].similarity);
    }
  }
}

TEST(HnswIndexTest, LoadGraphRejectsTruncatedImage) {
  const AttachedRows rows = MakeAttachedRows(40, 4, 19);
  HnswIndex built;
  built.AttachStorage(rows.ids.data(), rows.norm.data(), rows.count,
                      rows.dim);
  for (int64_t i = 0; i < rows.count; ++i) built.InsertNode();
  std::string image;
  built.SerializeGraph(&image);

  for (size_t cut : {size_t{0}, size_t{3}, image.size() / 2,
                     image.size() - 1}) {
    HnswIndex loaded;
    loaded.AttachStorage(rows.ids.data(), rows.norm.data(), rows.count,
                         rows.dim);
    util::BinaryReader reader(image.data(), cut);
    EXPECT_FALSE(loaded.LoadGraph(&reader).ok()) << "cut=" << cut;
  }
}

TEST(HnswIndexTest, LoadGraphRejectsOutOfRangeEntryPoint) {
  const AttachedRows rows = MakeAttachedRows(40, 4, 23);
  HnswIndex built;
  built.AttachStorage(rows.ids.data(), rows.norm.data(), rows.count,
                      rows.dim);
  for (int64_t i = 0; i < rows.count; ++i) built.InsertNode();
  std::string image;
  built.SerializeGraph(&image);
  // The entry point is the leading int32; point it past the node count.
  const int32_t bogus = 1000000;
  std::memcpy(image.data(), &bogus, sizeof(bogus));

  HnswIndex loaded;
  loaded.AttachStorage(rows.ids.data(), rows.norm.data(), rows.count,
                       rows.dim);
  util::BinaryReader reader(image.data(), image.size());
  const util::Status status = loaded.LoadGraph(&reader);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(HnswIndexTest, LoadGraphRejectsNodeCountMismatch) {
  const AttachedRows big = MakeAttachedRows(40, 4, 27);
  HnswIndex built;
  built.AttachStorage(big.ids.data(), big.norm.data(), big.count, big.dim);
  for (int64_t i = 0; i < big.count; ++i) built.InsertNode();
  std::string image;
  built.SerializeGraph(&image);

  const AttachedRows small = MakeAttachedRows(10, 4, 27);
  HnswIndex loaded;
  loaded.AttachStorage(small.ids.data(), small.norm.data(), small.count,
                       small.dim);
  util::BinaryReader reader(image.data(), image.size());
  EXPECT_FALSE(loaded.LoadGraph(&reader).ok());
}

TEST(HnswIndexTest, LoadGraphOnBuiltIndexIsFailedPrecondition) {
  const AttachedRows rows = MakeAttachedRows(20, 4, 31);
  HnswIndex built;
  built.AttachStorage(rows.ids.data(), rows.norm.data(), rows.count,
                      rows.dim);
  for (int64_t i = 0; i < rows.count; ++i) built.InsertNode();
  std::string image;
  built.SerializeGraph(&image);

  util::BinaryReader reader(image.data(), image.size());
  const util::Status status = built.LoadGraph(&reader);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace explainti::ann
