#include "serve/server.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/explain_ti_model.h"
#include "data/wiki_generator.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "tensor/workspace.h"
#include "util/alloc_counter.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace explainti::serve {
namespace {

using core::ExplainTiConfig;
using core::ExplainTiModel;
using core::Explanation;
using core::InferenceSession;
using core::TaskKind;

// Restores the global pool to the environment-configured size when a
// test that sweeps thread counts finishes, so test order doesn't matter.
class GlobalPoolGuard {
 public:
  GlobalPoolGuard() = default;
  ~GlobalPoolGuard() {
    util::SetGlobalThreadCount(util::ConfiguredThreadCount());
  }
};

// One shared frozen model for the whole suite: the serving layer never
// mutates weights, so every test can read through the same session.
struct SharedModel {
  SharedModel() : corpus(MakeCorpus()), model(MakeConfig(), corpus) {
    model.RefreshStores();
  }
  static data::TableCorpus MakeCorpus() {
    data::WikiTableOptions options;
    options.num_tables = 28;
    return data::GenerateWikiTableCorpus(options);
  }
  static ExplainTiConfig MakeConfig() {
    ExplainTiConfig config;
    config.sample_size = 4;
    config.top_k = 3;
    return config;
  }
  data::TableCorpus corpus;
  ExplainTiModel model;
};

const SharedModel& Shared() {
  static const SharedModel* shared = new SharedModel();
  return *shared;
}

std::vector<int> SampleIds(int count) {
  const core::TaskData& task = Shared().model.task_data(TaskKind::kType);
  std::vector<int> ids;
  const int n = static_cast<int>(task.samples.size());
  for (int id = 0; id < n && static_cast<int>(ids.size()) < count; ++id) {
    ids.push_back(id);
  }
  return ids;
}

void ExpectBitEqual(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << what;
  }
}

// Collects async responses into preallocated slots and lets the test
// block until every admitted request completed.
class Collector {
 public:
  explicit Collector(size_t n) : responses_(n), remaining_(n) {}

  ServeCallback Slot(size_t i) {
    return [this, i](ServeResponse&& response) {
      responses_[i] = std::move(response);
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_.notify_all();
    };
  }

  // For requests rejected at Submit: nothing to wait for.
  void MarkRejected() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

  const ServeResponse& response(size_t i) const { return responses_[i]; }

 private:
  std::vector<ServeResponse> responses_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
};

ServeRequest MakeRequest(ServeMethod method, int sample_id,
                         uint64_t trace_id = 0) {
  ServeRequest request;
  request.method = method;
  request.task = TaskKind::kType;
  request.sample_id = sample_id;
  request.trace_id = trace_id;
  return request;
}

// Distinct single-token input per `v`, for driving ResponseCache
// directly (the cache verifies stored input content on every hit).
text::EncodedSequence SeqOf(int v) {
  text::EncodedSequence seq;
  seq.ids = {v};
  seq.segments = {0};
  return seq;
}

// ---------------------------------------------------------------------------
// Golden bit-equality: batched serving must produce exactly what direct
// InferenceSession calls produce, at several batch sizes.
// ---------------------------------------------------------------------------

class GoldenBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldenBatchTest, ServerMatchesDirectSessionBitForBit) {
  const int batch_size = GetParam();
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(8);

  // Direct (unbatched) reference results.
  std::vector<std::vector<int>> want_labels;
  std::vector<std::vector<float>> want_probs;
  std::vector<Explanation> want_explanations;
  for (int id : ids) {
    want_labels.push_back(session.Predict(TaskKind::kType, id));
    want_probs.push_back(session.PredictProbabilities(TaskKind::kType, id));
    want_explanations.push_back(session.Explain(TaskKind::kType, id));
  }

  ServerOptions options;
  options.num_workers = 2;
  options.batcher.max_batch_size = batch_size;
  options.batcher.max_queue_wait_us = 3000;  // Let bursts coalesce.
  InferenceServer server(session, options);

  // One burst of all three methods; batches form from whatever is queued.
  Collector collector(3 * ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(server
                    .Submit(MakeRequest(ServeMethod::kPredict, ids[i], i),
                            collector.Slot(i))
                    .ok());
    ASSERT_TRUE(
        server
            .Submit(MakeRequest(ServeMethod::kPredictProbabilities, ids[i]),
                    collector.Slot(ids.size() + i))
            .ok());
    ASSERT_TRUE(server
                    .Submit(MakeRequest(ServeMethod::kExplain, ids[i]),
                            collector.Slot(2 * ids.size() + i))
                    .ok());
  }
  collector.Wait();

  for (size_t i = 0; i < ids.size(); ++i) {
    const ServeResponse& predict = collector.response(i);
    ASSERT_TRUE(predict.status.ok()) << predict.status.ToString();
    EXPECT_EQ(predict.trace_id, i);
    EXPECT_EQ(predict.labels, want_labels[i]);
    EXPECT_GE(predict.batch_size, 1);
    EXPECT_LE(predict.batch_size, batch_size);

    const ServeResponse& probs = collector.response(ids.size() + i);
    ASSERT_TRUE(probs.status.ok());
    ExpectBitEqual(probs.probabilities, want_probs[i], "probabilities");

    const ServeResponse& explain = collector.response(2 * ids.size() + i);
    ASSERT_TRUE(explain.status.ok());
    EXPECT_EQ(explain.explanation.predicted_labels,
              want_explanations[i].predicted_labels);
    ExpectBitEqual(explain.explanation.probabilities,
                   want_explanations[i].probabilities,
                   "explanation probabilities");
    ASSERT_EQ(explain.explanation.global.size(),
              want_explanations[i].global.size());
    EXPECT_EQ(explain.explanation.ann_degraded,
              want_explanations[i].ann_degraded);
    EXPECT_EQ(explain.explanation.degradation_note,
              want_explanations[i].degradation_note);
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, GoldenBatchTest,
                         ::testing::Values(1, 4, 8));

// The batched InferenceSession entry points themselves are bit-identical
// to per-sample calls at any pool size.
TEST(BatchedSessionTest, BatchedEntryPointsMatchPerSampleAtAnyThreadCount) {
  GlobalPoolGuard guard;
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(6);

  util::SetGlobalThreadCount(1);
  const std::vector<std::vector<int>> serial_labels =
      session.PredictBatch(TaskKind::kType, ids);
  const std::vector<std::vector<float>> serial_probs =
      session.PredictProbabilitiesBatch(TaskKind::kType, ids);

  util::SetGlobalThreadCount(4);
  const std::vector<std::vector<int>> parallel_labels =
      session.PredictBatch(TaskKind::kType, ids);
  const std::vector<std::vector<float>> parallel_probs =
      session.PredictProbabilitiesBatch(TaskKind::kType, ids);
  const std::vector<Explanation> explanations =
      session.ExplainBatch(TaskKind::kType, ids);

  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(parallel_labels[i], serial_labels[i]);
    EXPECT_EQ(parallel_labels[i], session.Predict(TaskKind::kType, ids[i]));
    ExpectBitEqual(parallel_probs[i], serial_probs[i], "probs across pools");
    EXPECT_EQ(explanations[i].predicted_labels, serial_labels[i]);
  }
}

// ---------------------------------------------------------------------------
// Deadline and admission control.
// ---------------------------------------------------------------------------

TEST(ServeAdmissionTest, ExpiredDeadlineIsShedBeforeCompute) {
  const InferenceSession& session = Shared().model.session();
  ServerOptions options;
  options.num_workers = 1;
  InferenceServer server(session, options);

  ServeRequest request = MakeRequest(ServeMethod::kPredict, 0, 77);
  request.deadline_us = util::MonotonicNowUs() - 1;  // Already expired.
  const ServeResponse response = server.ServeSync(request);
  EXPECT_EQ(response.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.trace_id, 77u);
  EXPECT_TRUE(response.labels.empty());
  EXPECT_GE(server.metrics().GetCounter("serve.deadline_expired")->Value(), 1);

  // A sane deadline still serves.
  request.deadline_us = util::DeadlineAfterUs(30'000'000);
  EXPECT_TRUE(server.ServeSync(request).status.ok());
}

TEST(ServeAdmissionTest, QueueOverflowRejectsInsteadOfBuffering) {
  const InferenceSession& session = Shared().model.session();
  ServerOptions options;
  options.num_workers = 0;  // Nothing drains: the queue must stay bounded.
  options.batcher.max_queue_depth = 3;
  std::atomic<int> shutdown_failures{0};
  int accepted = 0;
  {
    InferenceServer server(session, options);
    for (int i = 0; i < 8; ++i) {
      const util::Status admitted =
          server.Submit(MakeRequest(ServeMethod::kPredict, 0),
                        [&](ServeResponse&& response) {
                          if (!response.status.ok()) ++shutdown_failures;
                        });
      if (admitted.ok()) {
        ++accepted;
      } else {
        EXPECT_EQ(admitted.code(), util::StatusCode::kResourceExhausted);
      }
    }
    EXPECT_EQ(accepted, 3);
    EXPECT_EQ(server.batcher().size(), 3);
    EXPECT_EQ(server.batcher().high_water(), 3);
    EXPECT_EQ(server.metrics().GetCounter("serve.rejected_queue_full")->Value(),
              5);
  }
  // With no workers, shutdown fails (but never drops) the accepted ones.
  EXPECT_EQ(shutdown_failures.load(), 3);
}

TEST(ServeAdmissionTest, InvalidRequestsRejectedAtSubmit) {
  const InferenceSession& session = Shared().model.session();
  InferenceServer server(session);
  const ServeResponse negative =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, -1));
  EXPECT_EQ(negative.status.code(), util::StatusCode::kInvalidArgument);
  const ServeResponse huge =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 1 << 28));
  EXPECT_EQ(huge.status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(server.metrics().GetCounter("serve.rejected_invalid")->Value(), 2);
}

TEST(ServeAdmissionTest, DrainOnShutdownLosesNoAcceptedRequest) {
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(8);
  std::vector<std::vector<int>> want;
  for (int id : ids) want.push_back(session.Predict(TaskKind::kType, id));

  ServerOptions options;
  options.num_workers = 2;
  options.batcher.max_batch_size = 4;
  options.batcher.max_queue_wait_us = 2000;
  InferenceServer server(session, options);

  constexpr int kRequests = 32;
  Collector collector(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(
        server
            .Submit(MakeRequest(ServeMethod::kPredict,
                                ids[static_cast<size_t>(i) % ids.size()],
                                static_cast<uint64_t>(i)),
                    collector.Slot(static_cast<size_t>(i)))
            .ok());
  }
  server.Shutdown();  // Must serve all 32 before returning.
  collector.Wait();   // Completes immediately if drain held.

  for (int i = 0; i < kRequests; ++i) {
    const ServeResponse& response = collector.response(static_cast<size_t>(i));
    ASSERT_TRUE(response.status.ok()) << "request " << i << ": "
                                      << response.status.ToString();
    EXPECT_EQ(response.trace_id, static_cast<uint64_t>(i));
    EXPECT_EQ(response.labels, want[static_cast<size_t>(i) % want.size()]);
  }
  EXPECT_EQ(server.metrics().GetCounter("serve.completed")->Value(),
            kRequests);
  // Admission is closed after drain.
  EXPECT_EQ(server
                .Submit(MakeRequest(ServeMethod::kPredict, ids[0]),
                        [](ServeResponse&&) {})
                .code(),
            util::StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Batcher coalescing.
// ---------------------------------------------------------------------------

TEST(MicroBatcherTest, CoalescesCompatibleRequestsAndPreservesOrder) {
  BatcherOptions options;
  options.max_batch_size = 8;
  options.max_queue_wait_us = 0;  // Dispatch as soon as a consumer looks.
  MicroBatcher batcher(options);

  auto push = [&](ServeMethod method, uint64_t trace_id) {
    PendingRequest pending;
    pending.request = MakeRequest(method, 0, trace_id);
    pending.on_done = [](ServeResponse&&) {};
    ASSERT_TRUE(batcher.Push(std::move(pending)).ok());
  };
  push(ServeMethod::kPredict, 1);
  push(ServeMethod::kExplain, 2);
  push(ServeMethod::kPredict, 3);
  push(ServeMethod::kPredict, 4);

  std::vector<PendingRequest> batch, expired;
  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  EXPECT_TRUE(expired.empty());
  ASSERT_EQ(batch.size(), 3u);  // The three Predicts, around the Explain.
  EXPECT_EQ(batch[0].request.trace_id, 1u);
  EXPECT_EQ(batch[1].request.trace_id, 3u);
  EXPECT_EQ(batch[2].request.trace_id, 4u);

  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.method, ServeMethod::kExplain);
  EXPECT_EQ(batch[0].request.trace_id, 2u);

  batcher.Shutdown();
  EXPECT_FALSE(batcher.PopBatch(&batch, &expired));
}

TEST(MicroBatcherTest, RespectsMaxBatchSize) {
  BatcherOptions options;
  options.max_batch_size = 4;
  options.max_queue_wait_us = 0;
  MicroBatcher batcher(options);
  for (uint64_t i = 0; i < 10; ++i) {
    PendingRequest pending;
    pending.request = MakeRequest(ServeMethod::kPredict, 0, i);
    pending.on_done = [](ServeResponse&&) {};
    ASSERT_TRUE(batcher.Push(std::move(pending)).ok());
  }
  std::vector<PendingRequest> batch, expired;
  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batcher.size(), 0);
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(MetricsTest, CountersAndHistogramsAreSharedAndThreadSafe) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter, registry.GetCounter("test.counter"));  // Stable.
  Histogram* histogram =
      registry.GetHistogram("test.latency", Histogram::LatencyBucketsUs());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("test.counter")->Increment();
        histogram->Record(t * 100 + i % 100);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->Count(), kThreads * kPerThread);
  EXPECT_LE(histogram->Percentile(0.50), histogram->Percentile(0.99));
  EXPECT_GT(histogram->Percentile(0.99), 0.0);
}

TEST(MetricsTest, JsonSnapshotContainsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("serve.accepted")->Increment(5);
  registry.GetHistogram("serve.e2e_us", Histogram::LatencyBucketsUs())
      ->Record(150);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"serve.accepted\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve.e2e_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

TEST(MetricsTest, HistogramPercentileBracketsRecordedValues) {
  Histogram histogram(Histogram::LinearBuckets(10, 10, 20));  // 10..200.
  for (int v = 1; v <= 100; ++v) histogram.Record(v);
  const double p50 = histogram.Percentile(0.50);
  EXPECT_GE(p50, 40.0);
  EXPECT_LE(p50, 60.0);
  const double p99 = histogram.Percentile(0.99);
  EXPECT_GE(p99, 90.0);
  EXPECT_LE(p99, 110.0);
  EXPECT_EQ(histogram.Sum(), 5050);
}

TEST(MetricsTest, PercentileOfEmptyHistogramIsZero) {
  Histogram histogram(Histogram::LatencyBucketsUs());
  EXPECT_EQ(histogram.Percentile(0.50), 0.0);
  EXPECT_EQ(histogram.Percentile(0.99), 0.0);
  EXPECT_EQ(histogram.Count(), 0);
}

TEST(MetricsTest, SingleBucketPercentileIsBucketMidpoint) {
  // Every recording lands in the (20, 30] bucket: interpolating across
  // one bucket's mass must report its midpoint, not its lower edge, and
  // p50 must equal p99 (there is only one place the mass can be).
  Histogram histogram(Histogram::LinearBuckets(10, 10, 20));  // 10..200.
  for (int i = 0; i < 5; ++i) histogram.Record(25);
  EXPECT_EQ(histogram.Percentile(0.50), 25.0);
  EXPECT_EQ(histogram.Percentile(0.99), 25.0);
}

TEST(MetricsTest, OverflowOnlyPercentileSaturatesAtLastBound) {
  // Mass solely in the open-ended overflow bucket: the percentile
  // reports the last finite bound instead of inventing a larger value.
  Histogram histogram(Histogram::LinearBuckets(10, 10, 20));  // 10..200.
  histogram.Record(100'000);
  EXPECT_EQ(histogram.Percentile(0.50), 200.0);
  EXPECT_EQ(histogram.Percentile(0.99), 200.0);
}

// ---------------------------------------------------------------------------
// Tenant quotas: token buckets shed over-quota traffic at admission.
// ---------------------------------------------------------------------------

TEST(TenantRegistryTest, TokenBucketSpendsBurstThenRefillsAtQuotaRate) {
  TenantRegistry tenants;
  TenantOptions limited;
  limited.name = "metered";
  limited.priority = Priority::kBatch;
  limited.quota_rps = 2.0;
  limited.burst = 2.0;
  const int id = tenants.Register(limited);
  ASSERT_EQ(id, 1);  // 0 is the pre-registered default tenant.

  const int64_t t0 = 1'000'000;  // Explicit clock: no sleeping.
  EXPECT_TRUE(tenants.Admit(id, t0).ok());   // Burst token 1.
  EXPECT_TRUE(tenants.Admit(id, t0).ok());   // Burst token 2.
  const util::Status over = tenants.Admit(id, t0);
  EXPECT_EQ(over.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(tenants.quota_rejections(id), 1);

  // 500ms at 2 rps refills exactly one token; the next request in the
  // same instant is over quota again.
  EXPECT_TRUE(tenants.Admit(id, t0 + 500'000).ok());
  EXPECT_EQ(tenants.Admit(id, t0 + 500'000).code(),
            util::StatusCode::kResourceExhausted);
  EXPECT_EQ(tenants.quota_rejections(id), 2);
}

TEST(TenantRegistryTest, DefaultTenantIsUnlimitedAndUnknownIdsRejected) {
  TenantRegistry tenants;
  ASSERT_TRUE(tenants.Contains(0));
  EXPECT_EQ(tenants.options(0).priority, Priority::kInteractive);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tenants.Admit(0, 42).ok()) << i;  // Clock never advances.
  }
  EXPECT_EQ(tenants.quota_rejections(0), 0);
  EXPECT_FALSE(tenants.Contains(7));
  EXPECT_EQ(tenants.Admit(7, 42).code(), util::StatusCode::kInvalidArgument);
}

TEST(ServeTenantTest, OverQuotaTenantShedBeforeQueueWithPerTenantCounters) {
  const InferenceSession& session = Shared().model.session();
  TenantRegistry tenants;
  TenantOptions metered;
  metered.name = "metered";
  metered.priority = Priority::kBatch;
  metered.quota_rps = 0.001;  // Effectively no refill within the test.
  metered.burst = 2.0;
  const int metered_id = tenants.Register(metered);

  ServerOptions options;
  options.tenants = &tenants;
  InferenceServer server(session, options);
  int ok = 0, shed = 0;
  for (int i = 0; i < 6; ++i) {
    ServeRequest request = MakeRequest(ServeMethod::kPredict, 0);
    request.tenant_id = metered_id;
    const ServeResponse response = server.ServeSync(request);
    if (response.status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(response.status.code(), util::StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 2);    // The burst.
  EXPECT_EQ(shed, 4);  // Everything past it, rejected at admission.
  EXPECT_EQ(tenants.quota_rejections(metered_id), 4);
  EXPECT_EQ(
      server.metrics().GetCounter("serve.tenant.metered.rejected_quota")
          ->Value(),
      4);
  EXPECT_EQ(server.metrics().GetCounter("serve.tenant.metered.accepted")
                ->Value(),
            2);
  // The default tenant is untouched by the noisy neighbour.
  const ServeResponse response =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 0));
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(server.metrics().GetCounter("serve.tenant.default.accepted")
                ->Value(),
            1);
  // Unknown tenants are invalid, not over-quota.
  ServeRequest unknown = MakeRequest(ServeMethod::kPredict, 0);
  unknown.tenant_id = 99;
  EXPECT_EQ(server.ServeSync(unknown).status.code(),
            util::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Priority shedding: a full queue preempts the youngest request of the
// lowest class strictly below the arrival; equal classes keep the seed
// first-come-first-admitted behaviour.
// ---------------------------------------------------------------------------

TEST(MicroBatcherTest, FullQueuePreemptsYoungestOfLowestClass) {
  BatcherOptions options;
  options.max_queue_depth = 3;
  MicroBatcher batcher(options);

  auto push = [&batcher](Priority priority, uint64_t trace_id,
                         std::vector<PendingRequest>* preempted) {
    PendingRequest pending;
    pending.request.method = ServeMethod::kPredict;
    pending.request.sample_id = 0;
    pending.request.priority = priority;
    pending.request.trace_id = trace_id;
    pending.on_done = [](ServeResponse&&) {};
    return batcher.Push(std::move(pending), preempted);
  };

  std::vector<PendingRequest> preempted;
  ASSERT_TRUE(push(Priority::kBackground, 1, &preempted).ok());
  ASSERT_TRUE(push(Priority::kBackground, 2, &preempted).ok());
  ASSERT_TRUE(push(Priority::kBatch, 3, &preempted).ok());
  ASSERT_TRUE(preempted.empty());

  // Full queue + interactive arrival: the *youngest background* request
  // (trace 2) is shed — not the older background 1, not the batch 3.
  ASSERT_TRUE(push(Priority::kInteractive, 4, &preempted).ok());
  ASSERT_EQ(preempted.size(), 1u);
  EXPECT_EQ(preempted[0].request.trace_id, 2u);
  preempted.clear();

  // Batch arrival: background 1 is the only strictly-lower victim left.
  ASSERT_TRUE(push(Priority::kBatch, 5, &preempted).ok());
  ASSERT_EQ(preempted.size(), 1u);
  EXPECT_EQ(preempted[0].request.trace_id, 1u);
  preempted.clear();

  // Queue now holds {batch 3, interactive 4, batch 5}: a batch arrival
  // has no strictly-lower victim and is itself rejected (equal classes
  // never preempt each other).
  EXPECT_EQ(push(Priority::kBatch, 6, &preempted).code(),
            util::StatusCode::kResourceExhausted);
  EXPECT_TRUE(preempted.empty());
  // Interactive still preempts batch.
  ASSERT_TRUE(push(Priority::kInteractive, 7, &preempted).ok());
  ASSERT_EQ(preempted.size(), 1u);
  EXPECT_EQ(preempted[0].request.trace_id, 5u);  // Youngest batch.
  EXPECT_EQ(batcher.preemptions(), 3);
}

TEST(MicroBatcherTest, HighestQueuedClassLeadsDispatch) {
  BatcherOptions options;
  options.max_batch_size = 8;
  options.max_queue_wait_us = 0;  // Dispatch immediately.
  MicroBatcher batcher(options);

  auto push = [&batcher](ServeMethod method, Priority priority,
                         uint64_t trace_id) {
    PendingRequest pending;
    pending.request.method = method;
    pending.request.sample_id = 0;
    pending.request.priority = priority;
    pending.request.trace_id = trace_id;
    pending.on_done = [](ServeResponse&&) {};
    ASSERT_TRUE(batcher.Push(std::move(pending)).ok());
  };
  // Two background Predicts queued first, then an interactive Explain:
  // the Explain leads the first batch even though it arrived last.
  push(ServeMethod::kPredict, Priority::kBackground, 1);
  push(ServeMethod::kPredict, Priority::kBackground, 2);
  push(ServeMethod::kExplain, Priority::kInteractive, 3);

  std::vector<PendingRequest> batch, expired;
  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.trace_id, 3u);
  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.trace_id, 1u);
  EXPECT_EQ(batch[1].request.trace_id, 2u);
}

// ---------------------------------------------------------------------------
// Response cache: repeated tables short-circuit the queue with
// bit-identical payloads; capacity is enforced shard-locally.
// ---------------------------------------------------------------------------

TEST(ResponseCacheTest, LruEvictsWithinShardAndCountsEverything) {
  CacheOptions options;
  options.enabled = true;
  options.capacity = 2;
  options.num_shards = 1;  // Deterministic LRU order for the test.
  ResponseCache cache(options);

  ServeResponse response;
  response.status = util::Status::OK();
  response.labels = {7};
  const auto key = [](uint64_t hash) {
    return ResponseCache::Key{ServeMethod::kPredict, TaskKind::kType, hash};
  };
  cache.Insert(key(1), SeqOf(1), response);
  cache.Insert(key(2), SeqOf(2), response);
  ServeResponse out;
  EXPECT_TRUE(cache.Lookup(key(1), SeqOf(1), &out));  // Promotes 1 over 2.
  EXPECT_TRUE(out.cache_hit);
  EXPECT_EQ(out.labels, response.labels);
  cache.Insert(key(3), SeqOf(3), response);  // Evicts 2, the LRU entry.
  EXPECT_FALSE(cache.Lookup(key(2), SeqOf(2), &out));
  EXPECT_TRUE(cache.Lookup(key(1), SeqOf(1), &out));
  EXPECT_TRUE(cache.Lookup(key(3), SeqOf(3), &out));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 2);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Lookup(key(1), SeqOf(1), &out));
  EXPECT_EQ(cache.hits(), 3);  // Counters survive Clear().
}

TEST(ResponseCacheTest, CollidingKeyWithDifferentContentIsAMiss) {
  CacheOptions options;
  options.enabled = true;
  options.capacity = 4;
  options.num_shards = 1;
  ResponseCache cache(options);

  ServeResponse response;
  response.status = util::Status::OK();
  response.labels = {7};
  const ResponseCache::Key key{ServeMethod::kPredict, TaskKind::kType, 42};
  cache.Insert(key, SeqOf(1), response);

  // Same 64-bit key (a forced FNV collision), different input content:
  // the entry must not be served — a collision degrades to a verified
  // miss and a recomputation, never another input's (or another
  // tenant's) payload.
  ServeResponse out;
  EXPECT_FALSE(cache.Lookup(key, SeqOf(2), &out));
  EXPECT_TRUE(out.labels.empty());
  EXPECT_EQ(cache.misses(), 1);

  // The content the entry was computed from still hits.
  EXPECT_TRUE(cache.Lookup(key, SeqOf(1), &out));
  EXPECT_EQ(out.labels, response.labels);
  EXPECT_EQ(cache.hits(), 1);
}

TEST(ResponseCacheTest, CapacityIsExactRegardlessOfShardCount) {
  // More shards than capacity: shards clamp so the bound stays exact.
  CacheOptions options;
  options.enabled = true;
  options.capacity = 4;
  options.num_shards = 8;
  ResponseCache cache(options);
  EXPECT_EQ(cache.capacity(), 4);

  ServeResponse response;
  response.status = util::Status::OK();
  const auto insert = [&response](ResponseCache& c, int i) {
    c.Insert(ResponseCache::Key{ServeMethod::kPredict, TaskKind::kType,
                                static_cast<uint64_t>(i)},
             SeqOf(i), response);
  };
  for (int i = 1; i <= 64; ++i) insert(cache, i);
  EXPECT_EQ(cache.size(), 4);
  EXPECT_EQ(cache.evictions(), 60);

  // Non-divisible capacity: the remainder is distributed, so the shard
  // bounds sum to exactly the configured capacity (not rounded down).
  CacheOptions odd;
  odd.enabled = true;
  odd.capacity = 5;
  odd.num_shards = 2;
  ResponseCache cache5(odd);
  for (int i = 1; i <= 64; ++i) insert(cache5, i);
  EXPECT_EQ(cache5.size(), 5);
}

TEST(ServeCacheTest, RepeatedExplainHitsInlineAndBitIdentical) {
  const InferenceSession& session = Shared().model.session();
  const Explanation want = session.Explain(TaskKind::kType, 1);

  ServerOptions options;
  options.cache.enabled = true;
  InferenceServer server(session, options);

  const ServeResponse cold =
      server.ServeSync(MakeRequest(ServeMethod::kExplain, 1));
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.model_generation, 1u);

  const ServeResponse hot =
      server.ServeSync(MakeRequest(ServeMethod::kExplain, 1));
  ASSERT_TRUE(hot.status.ok());
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_EQ(hot.batch_size, 0);  // Never queued, never batched.
  EXPECT_EQ(hot.model_generation, 1u);

  // The hit reproduces the direct (uncached, unbatched) call bit for bit
  // — prediction, probabilities, all three explanation views, and the
  // ANN-degradation annotation.
  for (const ServeResponse* got : {&cold, &hot}) {
    EXPECT_EQ(got->explanation.predicted_labels, want.predicted_labels);
    ExpectBitEqual(got->explanation.probabilities, want.probabilities,
                   "cached probabilities");
    EXPECT_EQ(got->explanation.local.size(), want.local.size());
    EXPECT_EQ(got->explanation.global.size(), want.global.size());
    EXPECT_EQ(got->explanation.structural.size(), want.structural.size());
    EXPECT_EQ(got->explanation.ann_degraded, want.ann_degraded);
    EXPECT_EQ(got->explanation.degradation_note, want.degradation_note);
  }
  EXPECT_EQ(server.cache()->hits(), 1);
  EXPECT_EQ(server.cache()->misses(), 1);
  EXPECT_EQ(server.metrics().GetCounter("serve.cache_hits")->Value(), 1);
  // Different method on the same input is a different key, not a hit.
  const ServeResponse other =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 1));
  ASSERT_TRUE(other.status.ok());
  EXPECT_FALSE(other.cache_hit);
}

// ---------------------------------------------------------------------------
// Zero-drop hot swap: generations redirect atomically under concurrent
// load; every response is bit-exact for the generation that served it.
// ---------------------------------------------------------------------------

TEST(ServeHotSwapTest, ZeroDropBitExactAcrossThreeSwapsWithOneAborted) {
  util::fault::FaultRegistry::Instance().DisarmAll();
  const SharedModel& shared = Shared();
  const InferenceSession& session_a = shared.model.session();

  // Generation B: same corpus, different init seed — distinguishable
  // outputs, so a torn or misrouted response cannot go unnoticed.
  core::ExplainTiConfig config_b = SharedModel::MakeConfig();
  config_b.seed = 777;
  ExplainTiModel model_b(config_b, shared.corpus);
  model_b.RefreshStores();
  const std::string checkpoint_b = "/tmp/explainti_swap_gen_b.bin";
  ASSERT_TRUE(model_b.SaveWeights(checkpoint_b).ok());

  const std::vector<int> ids = SampleIds(6);
  std::vector<std::vector<float>> ref_a, ref_b;
  for (int id : ids) {
    ref_a.push_back(
        session_a.PredictProbabilities(TaskKind::kType, id));
    ref_b.push_back(
        model_b.session().PredictProbabilities(TaskKind::kType, id));
  }
  bool distinguishable = false;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ref_a[i] != ref_b[i]) distinguishable = true;
  }
  ASSERT_TRUE(distinguishable);

  ServerOptions options;
  options.num_workers = 3;
  options.batcher.max_queue_depth = 4096;
  InferenceServer server(session_a, options);
  ASSERT_EQ(server.current_generation(), 1u);

  // Concurrent closed-loop clients: every response must be OK and
  // bit-exact for whichever generation computed it (odd = A, even = B).
  constexpr int kClients = 3;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> submitted{0};
  std::atomic<int64_t> served{0};
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t slot = static_cast<size_t>((c + i++) % ids.size());
        submitted.fetch_add(1, std::memory_order_relaxed);
        const ServeResponse response = server.ServeSync(
            MakeRequest(ServeMethod::kPredictProbabilities, ids[slot]));
        if (!response.status.ok()) {
          failures[static_cast<size_t>(c)] =
              "dropped: " + response.status.ToString();
          return;
        }
        served.fetch_add(1, std::memory_order_relaxed);
        if (response.model_generation == 0) {
          failures[static_cast<size_t>(c)] = "missing generation stamp";
          return;
        }
        const std::vector<std::vector<float>>& want =
            (response.model_generation % 2 == 1) ? ref_a : ref_b;
        if (response.probabilities != want[slot]) {
          failures[static_cast<size_t>(c)] =
              "torn response on generation " +
              std::to_string(response.model_generation);
          return;
        }
      }
    });
  }

  const auto let_traffic_flow = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  let_traffic_flow();

  // Swap 1 (gen 2): a replica loaded fresh from B's checkpoint.
  util::StatusOr<std::unique_ptr<ExplainTiModel>> replica_b =
      core::LoadReplicaForSwap(config_b, shared.corpus, checkpoint_b);
  ASSERT_TRUE(replica_b.ok()) << replica_b.status().ToString();
  ASSERT_TRUE(server.SwapSession(replica_b.value()->session()).ok());
  EXPECT_EQ(server.current_generation(), 2u);
  let_traffic_flow();

  // Aborted swap: the checkpoint load fails mid-rollout; nothing to roll
  // back, generation 2 keeps serving untouched.
  util::fault::FaultSpec spec;
  spec.code = util::StatusCode::kIoError;
  spec.message = "checkpoint store unreachable";
  util::fault::FaultRegistry::Instance().Arm("swap.load_weights", spec);
  const util::StatusOr<std::unique_ptr<ExplainTiModel>> aborted =
      core::LoadReplicaForSwap(SharedModel::MakeConfig(), shared.corpus,
                               checkpoint_b);
  util::fault::FaultRegistry::Instance().DisarmAll();
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), util::StatusCode::kIoError);
  EXPECT_EQ(server.current_generation(), 2u);
  let_traffic_flow();

  // Swap 2 (gen 3): back to A. Swap 3 (gen 4): to B again.
  ASSERT_TRUE(server.SwapSession(session_a).ok());
  EXPECT_EQ(server.current_generation(), 3u);
  let_traffic_flow();
  ASSERT_TRUE(server.SwapSession(model_b.session()).ok());
  EXPECT_EQ(server.current_generation(), 4u);
  let_traffic_flow();

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<size_t>(c)], "") << "client " << c;
  }
  // Zero drop: every submitted request came back served and OK.
  EXPECT_EQ(served.load(), submitted.load());
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(server.metrics().GetCounter("serve.swaps")->Value(), 3);
}

TEST(ServeHotSwapTest, SwapFaultAbortsWithoutTouchingServingState) {
  util::fault::FaultRegistry::Instance().DisarmAll();
  const InferenceSession& session = Shared().model.session();
  ServerOptions options;
  options.cache.enabled = true;
  InferenceServer server(session, options);
  const ServeResponse cold =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 0));
  ASSERT_TRUE(cold.status.ok());

  util::fault::FaultSpec spec;
  spec.code = util::StatusCode::kInternal;
  spec.message = "rollout controller crashed";
  util::fault::FaultRegistry::Instance().Arm("serve.swap", spec);
  const util::Status swap = server.SwapSession(session);
  util::fault::FaultRegistry::Instance().DisarmAll();
  EXPECT_EQ(swap.code(), util::StatusCode::kInternal);
  EXPECT_EQ(server.current_generation(), 1u);
  EXPECT_EQ(server.metrics().GetCounter("serve.swap_aborted")->Value(), 1);

  // The cache survived the aborted swap (no invalidation happened) and
  // the old generation still serves.
  const ServeResponse hot =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 0));
  ASSERT_TRUE(hot.status.ok());
  EXPECT_TRUE(hot.cache_hit);

  // A successful swap *does* invalidate: the next request recomputes.
  ASSERT_TRUE(server.SwapSession(session).ok());
  const ServeResponse after =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 0));
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.model_generation, 2u);
}

// A request is validated against the generation current at admission
// but executes on whatever generation its batch pins: if a hot-swap in
// between shrank the sample set, dispatch must fail that request with a
// typed status — alone, without crashing — while the rest of the batch
// serves normally.
TEST(ServeHotSwapTest, StaleRequestAfterSwapFailsTypedNotCrash) {
  const InferenceSession& session = Shared().model.session();
  MetricsRegistry metrics;

  ServeResponse valid_out, stale_out;
  std::vector<PendingRequest> batch(2);
  batch[0].request = MakeRequest(ServeMethod::kPredict, 0, 1);
  batch[0].on_done = [&](ServeResponse&& r) { valid_out = std::move(r); };
  // Valid when admitted (notionally, on a bigger pre-swap generation),
  // out of range on the session this batch executes against.
  batch[1].request = MakeRequest(ServeMethod::kPredict, 1 << 28, 2);
  batch[1].on_done = [&](ServeResponse&& r) { stale_out = std::move(r); };

  InferenceServer::ExecuteBatch(session, batch, &metrics);

  EXPECT_EQ(stale_out.status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(stale_out.trace_id, 2u);
  EXPECT_TRUE(stale_out.labels.empty());
  ASSERT_TRUE(valid_out.status.ok()) << valid_out.status.ToString();
  EXPECT_EQ(valid_out.trace_id, 1u);
  EXPECT_EQ(valid_out.labels, session.Predict(TaskKind::kType, 0));
  EXPECT_EQ(valid_out.batch_size, 1);  // The stale entry left the batch.
  EXPECT_EQ(metrics.GetCounter("serve.rejected_stale")->Value(), 1);
}

// ---------------------------------------------------------------------------
// Degradation-note propagation: an ANN fault during a *batched* Explain
// must annotate every affected response, exactly as direct Explain does.
// ---------------------------------------------------------------------------

TEST(ServeDegradationTest, BatchedExplainCarriesAnnDegradationNote) {
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(4);

  ServerOptions options;
  options.num_workers = 1;
  options.batcher.max_batch_size = 4;
  options.batcher.max_queue_wait_us = 3000;
  InferenceServer server(session, options);

  util::fault::FaultSpec spec;
  util::fault::FaultRegistry::Instance().Arm("ann.query", spec);
  Collector degraded(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(server
                    .Submit(MakeRequest(ServeMethod::kExplain, ids[i], i),
                            degraded.Slot(i))
                    .ok());
  }
  degraded.Wait();
  util::fault::FaultRegistry::Instance().DisarmAll();

  for (size_t i = 0; i < ids.size(); ++i) {
    const ServeResponse& response = degraded.response(i);
    ASSERT_TRUE(response.status.ok());
    EXPECT_TRUE(response.explanation.ann_degraded) << "request " << i;
    EXPECT_FALSE(response.explanation.degradation_note.empty())
        << "batched Explain dropped the degradation note on request " << i;
  }

  // Healthy again: batched responses agree with direct Explain's flag.
  const Explanation direct = session.Explain(TaskKind::kType, ids[0]);
  const ServeResponse healthy =
      server.ServeSync(MakeRequest(ServeMethod::kExplain, ids[0]));
  ASSERT_TRUE(healthy.status.ok());
  EXPECT_EQ(healthy.explanation.ann_degraded, direct.ann_degraded);
  EXPECT_EQ(healthy.explanation.degradation_note, direct.degradation_note);
}

// ---------------------------------------------------------------------------
// Steady-state worker loop allocation discipline: the batch-execution
// body must perform zero tensor heap allocations (all scratch comes from
// the per-thread Workspace arena) and its remaining heap traffic
// (response envelopes, id vectors) must be exactly repeatable.
// ---------------------------------------------------------------------------

TEST(ServeAllocTest, SteadyStateExecuteBatchIsZeroTensorAlloc) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);  // Chunks run inline on this thread.
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(4);

  std::vector<ServeResponse> slots(ids.size());
  std::vector<PendingRequest> batch(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    batch[i].request = MakeRequest(ServeMethod::kPredict, ids[i], i);
    batch[i].request.arrival_us = util::MonotonicNowUs();
    ServeResponse* slot = &slots[i];
    batch[i].on_done = [slot](ServeResponse&& response) {
      *slot = std::move(response);
    };
  }

  auto run = [&] { InferenceServer::ExecuteBatch(session, batch, nullptr); };
  run();  // Warm-up: populates the per-thread workspace arena.
  run();  // Second pass so every bucket reaches its high-water mark.

  const tensor::WorkspaceStats before = tensor::ThisThreadWorkspaceStats();
  const util::AllocCounts heap_before = util::ThisThreadAllocCounts();
  run();
  const util::AllocCounts heap_mid = util::ThisThreadAllocCounts();
  run();
  const tensor::WorkspaceStats after = tensor::ThisThreadWorkspaceStats();
  const util::AllocCounts heap_after = util::ThisThreadAllocCounts();

  EXPECT_GT(after.node_acquires, before.node_acquires);
  EXPECT_EQ(after.node_misses, before.node_misses)
      << "tensor node fell back to the heap in the steady-state batch loop";
  EXPECT_EQ(after.buffer_misses, before.buffer_misses)
      << "tensor buffer fell back to the heap in the steady-state batch loop";
  EXPECT_EQ(heap_mid.allocations - heap_before.allocations,
            heap_after.allocations - heap_mid.allocations);
  EXPECT_EQ(heap_mid.bytes - heap_before.bytes,
            heap_after.bytes - heap_mid.bytes);

  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(slots[i].labels, session.Predict(TaskKind::kType, ids[i]));
  }
}

// ---------------------------------------------------------------------------
// Many-client concurrency (exercised under TSan via the tier1 label: the
// tsan CI job runs this binary with a 4-thread pool).
// ---------------------------------------------------------------------------

TEST(ServeTsanTest, ManyClientsOneServerStayDeterministic) {
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(6);
  std::vector<std::vector<int>> want_labels;
  std::vector<std::vector<float>> want_probs;
  for (int id : ids) {
    want_labels.push_back(session.Predict(TaskKind::kType, id));
    want_probs.push_back(session.PredictProbabilities(TaskKind::kType, id));
  }

  ServerOptions options;
  options.num_workers = 2;
  options.batcher.max_batch_size = 4;
  options.batcher.max_queue_wait_us = 500;
  InferenceServer server(session, options);

  constexpr int kClients = 4;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < ids.size(); ++i) {
          const size_t j = (i + static_cast<size_t>(c)) % ids.size();
          const ServeResponse predict =
              server.ServeSync(MakeRequest(ServeMethod::kPredict, ids[j]));
          if (!predict.status.ok() || predict.labels != want_labels[j]) {
            failures[static_cast<size_t>(c)] = "Predict mismatch";
            return;
          }
          const ServeResponse probs = server.ServeSync(
              MakeRequest(ServeMethod::kPredictProbabilities, ids[j]));
          if (!probs.status.ok() ||
              probs.probabilities.size() != want_probs[j].size() ||
              std::memcmp(probs.probabilities.data(), want_probs[j].data(),
                          want_probs[j].size() * sizeof(float)) != 0) {
            failures[static_cast<size_t>(c)] = "probability mismatch";
            return;
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<size_t>(c)], "") << "client " << c;
  }
  EXPECT_GE(server.metrics()
                .GetHistogram("serve.batch_size",
                              Histogram::LinearBuckets(1, 1, 32))
                ->Count(),
            1);
}

}  // namespace
}  // namespace explainti::serve
