#include "serve/server.h"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/explain_ti_model.h"
#include "data/wiki_generator.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "tensor/workspace.h"
#include "util/alloc_counter.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace explainti::serve {
namespace {

using core::ExplainTiConfig;
using core::ExplainTiModel;
using core::Explanation;
using core::InferenceSession;
using core::TaskKind;

// Restores the global pool to the environment-configured size when a
// test that sweeps thread counts finishes, so test order doesn't matter.
class GlobalPoolGuard {
 public:
  GlobalPoolGuard() = default;
  ~GlobalPoolGuard() {
    util::SetGlobalThreadCount(util::ConfiguredThreadCount());
  }
};

// One shared frozen model for the whole suite: the serving layer never
// mutates weights, so every test can read through the same session.
struct SharedModel {
  SharedModel() : corpus(MakeCorpus()), model(MakeConfig(), corpus) {
    model.RefreshStores();
  }
  static data::TableCorpus MakeCorpus() {
    data::WikiTableOptions options;
    options.num_tables = 28;
    return data::GenerateWikiTableCorpus(options);
  }
  static ExplainTiConfig MakeConfig() {
    ExplainTiConfig config;
    config.sample_size = 4;
    config.top_k = 3;
    return config;
  }
  data::TableCorpus corpus;
  ExplainTiModel model;
};

const SharedModel& Shared() {
  static const SharedModel* shared = new SharedModel();
  return *shared;
}

std::vector<int> SampleIds(int count) {
  const core::TaskData& task = Shared().model.task_data(TaskKind::kType);
  std::vector<int> ids;
  const int n = static_cast<int>(task.samples.size());
  for (int id = 0; id < n && static_cast<int>(ids.size()) < count; ++id) {
    ids.push_back(id);
  }
  return ids;
}

void ExpectBitEqual(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << what;
  }
}

// Collects async responses into preallocated slots and lets the test
// block until every admitted request completed.
class Collector {
 public:
  explicit Collector(size_t n) : responses_(n), remaining_(n) {}

  ServeCallback Slot(size_t i) {
    return [this, i](ServeResponse&& response) {
      responses_[i] = std::move(response);
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_.notify_all();
    };
  }

  // For requests rejected at Submit: nothing to wait for.
  void MarkRejected() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

  const ServeResponse& response(size_t i) const { return responses_[i]; }

 private:
  std::vector<ServeResponse> responses_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
};

ServeRequest MakeRequest(ServeMethod method, int sample_id,
                         uint64_t trace_id = 0) {
  ServeRequest request;
  request.method = method;
  request.task = TaskKind::kType;
  request.sample_id = sample_id;
  request.trace_id = trace_id;
  return request;
}

// ---------------------------------------------------------------------------
// Golden bit-equality: batched serving must produce exactly what direct
// InferenceSession calls produce, at several batch sizes.
// ---------------------------------------------------------------------------

class GoldenBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldenBatchTest, ServerMatchesDirectSessionBitForBit) {
  const int batch_size = GetParam();
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(8);

  // Direct (unbatched) reference results.
  std::vector<std::vector<int>> want_labels;
  std::vector<std::vector<float>> want_probs;
  std::vector<Explanation> want_explanations;
  for (int id : ids) {
    want_labels.push_back(session.Predict(TaskKind::kType, id));
    want_probs.push_back(session.PredictProbabilities(TaskKind::kType, id));
    want_explanations.push_back(session.Explain(TaskKind::kType, id));
  }

  ServerOptions options;
  options.num_workers = 2;
  options.batcher.max_batch_size = batch_size;
  options.batcher.max_queue_wait_us = 3000;  // Let bursts coalesce.
  InferenceServer server(session, options);

  // One burst of all three methods; batches form from whatever is queued.
  Collector collector(3 * ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(server
                    .Submit(MakeRequest(ServeMethod::kPredict, ids[i], i),
                            collector.Slot(i))
                    .ok());
    ASSERT_TRUE(
        server
            .Submit(MakeRequest(ServeMethod::kPredictProbabilities, ids[i]),
                    collector.Slot(ids.size() + i))
            .ok());
    ASSERT_TRUE(server
                    .Submit(MakeRequest(ServeMethod::kExplain, ids[i]),
                            collector.Slot(2 * ids.size() + i))
                    .ok());
  }
  collector.Wait();

  for (size_t i = 0; i < ids.size(); ++i) {
    const ServeResponse& predict = collector.response(i);
    ASSERT_TRUE(predict.status.ok()) << predict.status.ToString();
    EXPECT_EQ(predict.trace_id, i);
    EXPECT_EQ(predict.labels, want_labels[i]);
    EXPECT_GE(predict.batch_size, 1);
    EXPECT_LE(predict.batch_size, batch_size);

    const ServeResponse& probs = collector.response(ids.size() + i);
    ASSERT_TRUE(probs.status.ok());
    ExpectBitEqual(probs.probabilities, want_probs[i], "probabilities");

    const ServeResponse& explain = collector.response(2 * ids.size() + i);
    ASSERT_TRUE(explain.status.ok());
    EXPECT_EQ(explain.explanation.predicted_labels,
              want_explanations[i].predicted_labels);
    ExpectBitEqual(explain.explanation.probabilities,
                   want_explanations[i].probabilities,
                   "explanation probabilities");
    ASSERT_EQ(explain.explanation.global.size(),
              want_explanations[i].global.size());
    EXPECT_EQ(explain.explanation.ann_degraded,
              want_explanations[i].ann_degraded);
    EXPECT_EQ(explain.explanation.degradation_note,
              want_explanations[i].degradation_note);
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, GoldenBatchTest,
                         ::testing::Values(1, 4, 8));

// The batched InferenceSession entry points themselves are bit-identical
// to per-sample calls at any pool size.
TEST(BatchedSessionTest, BatchedEntryPointsMatchPerSampleAtAnyThreadCount) {
  GlobalPoolGuard guard;
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(6);

  util::SetGlobalThreadCount(1);
  const std::vector<std::vector<int>> serial_labels =
      session.PredictBatch(TaskKind::kType, ids);
  const std::vector<std::vector<float>> serial_probs =
      session.PredictProbabilitiesBatch(TaskKind::kType, ids);

  util::SetGlobalThreadCount(4);
  const std::vector<std::vector<int>> parallel_labels =
      session.PredictBatch(TaskKind::kType, ids);
  const std::vector<std::vector<float>> parallel_probs =
      session.PredictProbabilitiesBatch(TaskKind::kType, ids);
  const std::vector<Explanation> explanations =
      session.ExplainBatch(TaskKind::kType, ids);

  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(parallel_labels[i], serial_labels[i]);
    EXPECT_EQ(parallel_labels[i], session.Predict(TaskKind::kType, ids[i]));
    ExpectBitEqual(parallel_probs[i], serial_probs[i], "probs across pools");
    EXPECT_EQ(explanations[i].predicted_labels, serial_labels[i]);
  }
}

// ---------------------------------------------------------------------------
// Deadline and admission control.
// ---------------------------------------------------------------------------

TEST(ServeAdmissionTest, ExpiredDeadlineIsShedBeforeCompute) {
  const InferenceSession& session = Shared().model.session();
  ServerOptions options;
  options.num_workers = 1;
  InferenceServer server(session, options);

  ServeRequest request = MakeRequest(ServeMethod::kPredict, 0, 77);
  request.deadline_us = util::MonotonicNowUs() - 1;  // Already expired.
  const ServeResponse response = server.ServeSync(request);
  EXPECT_EQ(response.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.trace_id, 77u);
  EXPECT_TRUE(response.labels.empty());
  EXPECT_GE(server.metrics().GetCounter("serve.deadline_expired")->Value(), 1);

  // A sane deadline still serves.
  request.deadline_us = util::DeadlineAfterUs(30'000'000);
  EXPECT_TRUE(server.ServeSync(request).status.ok());
}

TEST(ServeAdmissionTest, QueueOverflowRejectsInsteadOfBuffering) {
  const InferenceSession& session = Shared().model.session();
  ServerOptions options;
  options.num_workers = 0;  // Nothing drains: the queue must stay bounded.
  options.batcher.max_queue_depth = 3;
  std::atomic<int> shutdown_failures{0};
  int accepted = 0;
  {
    InferenceServer server(session, options);
    for (int i = 0; i < 8; ++i) {
      const util::Status admitted =
          server.Submit(MakeRequest(ServeMethod::kPredict, 0),
                        [&](ServeResponse&& response) {
                          if (!response.status.ok()) ++shutdown_failures;
                        });
      if (admitted.ok()) {
        ++accepted;
      } else {
        EXPECT_EQ(admitted.code(), util::StatusCode::kResourceExhausted);
      }
    }
    EXPECT_EQ(accepted, 3);
    EXPECT_EQ(server.batcher().size(), 3);
    EXPECT_EQ(server.batcher().high_water(), 3);
    EXPECT_EQ(server.metrics().GetCounter("serve.rejected_queue_full")->Value(),
              5);
  }
  // With no workers, shutdown fails (but never drops) the accepted ones.
  EXPECT_EQ(shutdown_failures.load(), 3);
}

TEST(ServeAdmissionTest, InvalidRequestsRejectedAtSubmit) {
  const InferenceSession& session = Shared().model.session();
  InferenceServer server(session);
  const ServeResponse negative =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, -1));
  EXPECT_EQ(negative.status.code(), util::StatusCode::kInvalidArgument);
  const ServeResponse huge =
      server.ServeSync(MakeRequest(ServeMethod::kPredict, 1 << 28));
  EXPECT_EQ(huge.status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(server.metrics().GetCounter("serve.rejected_invalid")->Value(), 2);
}

TEST(ServeAdmissionTest, DrainOnShutdownLosesNoAcceptedRequest) {
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(8);
  std::vector<std::vector<int>> want;
  for (int id : ids) want.push_back(session.Predict(TaskKind::kType, id));

  ServerOptions options;
  options.num_workers = 2;
  options.batcher.max_batch_size = 4;
  options.batcher.max_queue_wait_us = 2000;
  InferenceServer server(session, options);

  constexpr int kRequests = 32;
  Collector collector(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(
        server
            .Submit(MakeRequest(ServeMethod::kPredict,
                                ids[static_cast<size_t>(i) % ids.size()],
                                static_cast<uint64_t>(i)),
                    collector.Slot(static_cast<size_t>(i)))
            .ok());
  }
  server.Shutdown();  // Must serve all 32 before returning.
  collector.Wait();   // Completes immediately if drain held.

  for (int i = 0; i < kRequests; ++i) {
    const ServeResponse& response = collector.response(static_cast<size_t>(i));
    ASSERT_TRUE(response.status.ok()) << "request " << i << ": "
                                      << response.status.ToString();
    EXPECT_EQ(response.trace_id, static_cast<uint64_t>(i));
    EXPECT_EQ(response.labels, want[static_cast<size_t>(i) % want.size()]);
  }
  EXPECT_EQ(server.metrics().GetCounter("serve.completed")->Value(),
            kRequests);
  // Admission is closed after drain.
  EXPECT_EQ(server
                .Submit(MakeRequest(ServeMethod::kPredict, ids[0]),
                        [](ServeResponse&&) {})
                .code(),
            util::StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Batcher coalescing.
// ---------------------------------------------------------------------------

TEST(MicroBatcherTest, CoalescesCompatibleRequestsAndPreservesOrder) {
  BatcherOptions options;
  options.max_batch_size = 8;
  options.max_queue_wait_us = 0;  // Dispatch as soon as a consumer looks.
  MicroBatcher batcher(options);

  auto push = [&](ServeMethod method, uint64_t trace_id) {
    PendingRequest pending;
    pending.request = MakeRequest(method, 0, trace_id);
    pending.on_done = [](ServeResponse&&) {};
    ASSERT_TRUE(batcher.Push(std::move(pending)).ok());
  };
  push(ServeMethod::kPredict, 1);
  push(ServeMethod::kExplain, 2);
  push(ServeMethod::kPredict, 3);
  push(ServeMethod::kPredict, 4);

  std::vector<PendingRequest> batch, expired;
  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  EXPECT_TRUE(expired.empty());
  ASSERT_EQ(batch.size(), 3u);  // The three Predicts, around the Explain.
  EXPECT_EQ(batch[0].request.trace_id, 1u);
  EXPECT_EQ(batch[1].request.trace_id, 3u);
  EXPECT_EQ(batch[2].request.trace_id, 4u);

  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.method, ServeMethod::kExplain);
  EXPECT_EQ(batch[0].request.trace_id, 2u);

  batcher.Shutdown();
  EXPECT_FALSE(batcher.PopBatch(&batch, &expired));
}

TEST(MicroBatcherTest, RespectsMaxBatchSize) {
  BatcherOptions options;
  options.max_batch_size = 4;
  options.max_queue_wait_us = 0;
  MicroBatcher batcher(options);
  for (uint64_t i = 0; i < 10; ++i) {
    PendingRequest pending;
    pending.request = MakeRequest(ServeMethod::kPredict, 0, i);
    pending.on_done = [](ServeResponse&&) {};
    ASSERT_TRUE(batcher.Push(std::move(pending)).ok());
  }
  std::vector<PendingRequest> batch, expired;
  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(batcher.PopBatch(&batch, &expired));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batcher.size(), 0);
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(MetricsTest, CountersAndHistogramsAreSharedAndThreadSafe) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter, registry.GetCounter("test.counter"));  // Stable.
  Histogram* histogram =
      registry.GetHistogram("test.latency", Histogram::LatencyBucketsUs());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("test.counter")->Increment();
        histogram->Record(t * 100 + i % 100);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->Count(), kThreads * kPerThread);
  EXPECT_LE(histogram->Percentile(0.50), histogram->Percentile(0.99));
  EXPECT_GT(histogram->Percentile(0.99), 0.0);
}

TEST(MetricsTest, JsonSnapshotContainsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("serve.accepted")->Increment(5);
  registry.GetHistogram("serve.e2e_us", Histogram::LatencyBucketsUs())
      ->Record(150);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"serve.accepted\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve.e2e_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

TEST(MetricsTest, HistogramPercentileBracketsRecordedValues) {
  Histogram histogram(Histogram::LinearBuckets(10, 10, 20));  // 10..200.
  for (int v = 1; v <= 100; ++v) histogram.Record(v);
  const double p50 = histogram.Percentile(0.50);
  EXPECT_GE(p50, 40.0);
  EXPECT_LE(p50, 60.0);
  const double p99 = histogram.Percentile(0.99);
  EXPECT_GE(p99, 90.0);
  EXPECT_LE(p99, 110.0);
  EXPECT_EQ(histogram.Sum(), 5050);
}

// ---------------------------------------------------------------------------
// Degradation-note propagation: an ANN fault during a *batched* Explain
// must annotate every affected response, exactly as direct Explain does.
// ---------------------------------------------------------------------------

TEST(ServeDegradationTest, BatchedExplainCarriesAnnDegradationNote) {
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(4);

  ServerOptions options;
  options.num_workers = 1;
  options.batcher.max_batch_size = 4;
  options.batcher.max_queue_wait_us = 3000;
  InferenceServer server(session, options);

  util::fault::FaultSpec spec;
  util::fault::FaultRegistry::Instance().Arm("ann.query", spec);
  Collector degraded(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(server
                    .Submit(MakeRequest(ServeMethod::kExplain, ids[i], i),
                            degraded.Slot(i))
                    .ok());
  }
  degraded.Wait();
  util::fault::FaultRegistry::Instance().DisarmAll();

  for (size_t i = 0; i < ids.size(); ++i) {
    const ServeResponse& response = degraded.response(i);
    ASSERT_TRUE(response.status.ok());
    EXPECT_TRUE(response.explanation.ann_degraded) << "request " << i;
    EXPECT_FALSE(response.explanation.degradation_note.empty())
        << "batched Explain dropped the degradation note on request " << i;
  }

  // Healthy again: batched responses agree with direct Explain's flag.
  const Explanation direct = session.Explain(TaskKind::kType, ids[0]);
  const ServeResponse healthy =
      server.ServeSync(MakeRequest(ServeMethod::kExplain, ids[0]));
  ASSERT_TRUE(healthy.status.ok());
  EXPECT_EQ(healthy.explanation.ann_degraded, direct.ann_degraded);
  EXPECT_EQ(healthy.explanation.degradation_note, direct.degradation_note);
}

// ---------------------------------------------------------------------------
// Steady-state worker loop allocation discipline: the batch-execution
// body must perform zero tensor heap allocations (all scratch comes from
// the per-thread Workspace arena) and its remaining heap traffic
// (response envelopes, id vectors) must be exactly repeatable.
// ---------------------------------------------------------------------------

TEST(ServeAllocTest, SteadyStateExecuteBatchIsZeroTensorAlloc) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);  // Chunks run inline on this thread.
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(4);

  std::vector<ServeResponse> slots(ids.size());
  std::vector<PendingRequest> batch(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    batch[i].request = MakeRequest(ServeMethod::kPredict, ids[i], i);
    batch[i].request.arrival_us = util::MonotonicNowUs();
    ServeResponse* slot = &slots[i];
    batch[i].on_done = [slot](ServeResponse&& response) {
      *slot = std::move(response);
    };
  }

  auto run = [&] { InferenceServer::ExecuteBatch(session, batch, nullptr); };
  run();  // Warm-up: populates the per-thread workspace arena.
  run();  // Second pass so every bucket reaches its high-water mark.

  const tensor::WorkspaceStats before = tensor::ThisThreadWorkspaceStats();
  const util::AllocCounts heap_before = util::ThisThreadAllocCounts();
  run();
  const util::AllocCounts heap_mid = util::ThisThreadAllocCounts();
  run();
  const tensor::WorkspaceStats after = tensor::ThisThreadWorkspaceStats();
  const util::AllocCounts heap_after = util::ThisThreadAllocCounts();

  EXPECT_GT(after.node_acquires, before.node_acquires);
  EXPECT_EQ(after.node_misses, before.node_misses)
      << "tensor node fell back to the heap in the steady-state batch loop";
  EXPECT_EQ(after.buffer_misses, before.buffer_misses)
      << "tensor buffer fell back to the heap in the steady-state batch loop";
  EXPECT_EQ(heap_mid.allocations - heap_before.allocations,
            heap_after.allocations - heap_mid.allocations);
  EXPECT_EQ(heap_mid.bytes - heap_before.bytes,
            heap_after.bytes - heap_mid.bytes);

  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(slots[i].labels, session.Predict(TaskKind::kType, ids[i]));
  }
}

// ---------------------------------------------------------------------------
// Many-client concurrency (exercised under TSan via the tier1 label: the
// tsan CI job runs this binary with a 4-thread pool).
// ---------------------------------------------------------------------------

TEST(ServeTsanTest, ManyClientsOneServerStayDeterministic) {
  const InferenceSession& session = Shared().model.session();
  const std::vector<int> ids = SampleIds(6);
  std::vector<std::vector<int>> want_labels;
  std::vector<std::vector<float>> want_probs;
  for (int id : ids) {
    want_labels.push_back(session.Predict(TaskKind::kType, id));
    want_probs.push_back(session.PredictProbabilities(TaskKind::kType, id));
  }

  ServerOptions options;
  options.num_workers = 2;
  options.batcher.max_batch_size = 4;
  options.batcher.max_queue_wait_us = 500;
  InferenceServer server(session, options);

  constexpr int kClients = 4;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < ids.size(); ++i) {
          const size_t j = (i + static_cast<size_t>(c)) % ids.size();
          const ServeResponse predict =
              server.ServeSync(MakeRequest(ServeMethod::kPredict, ids[j]));
          if (!predict.status.ok() || predict.labels != want_labels[j]) {
            failures[static_cast<size_t>(c)] = "Predict mismatch";
            return;
          }
          const ServeResponse probs = server.ServeSync(
              MakeRequest(ServeMethod::kPredictProbabilities, ids[j]));
          if (!probs.status.ok() ||
              probs.probabilities.size() != want_probs[j].size() ||
              std::memcmp(probs.probabilities.data(), want_probs[j].data(),
                          want_probs[j].size() * sizeof(float)) != 0) {
            failures[static_cast<size_t>(c)] = "probability mismatch";
            return;
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<size_t>(c)], "") << "client " << c;
  }
  EXPECT_GE(server.metrics()
                .GetHistogram("serve.batch_size",
                              Histogram::LinearBuckets(1, 1, 32))
                ->Count(),
            1);
}

}  // namespace
}  // namespace explainti::serve
