#include "graph/column_graph.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace explainti::graph {
namespace {

/// Builds the graph of the paper's Figure 2 example: two tables sharing a
/// header, columns sharing titles within a table.
ColumnGraph ExampleGraph() {
  ColumnGraph graph;
  // Table 1 (title "t1"): columns 0 (header "player"), 1 ("team").
  graph.AddSample(0, "t1", "player");
  graph.AddSample(1, "t1", "team");
  // Table 2 (title "t2"): columns 2 ("player"), 3 ("college").
  graph.AddSample(2, "t2", "player");
  graph.AddSample(3, "t2", "college");
  // Isolated table: one column, unique title and header.
  graph.AddSample(4, "t3", "votes");
  return graph;
}

TEST(ColumnGraphTest, CountsSamplesAndBridges) {
  ColumnGraph graph = ExampleGraph();
  EXPECT_EQ(graph.num_samples(), 5);
  // Bridges: titles {t1,t2,t3} + headers {player,team,college,votes}.
  EXPECT_EQ(graph.num_bridges(), 7);
}

TEST(ColumnGraphTest, NeighborsViaTitleAndHeader) {
  ColumnGraph graph = ExampleGraph();
  const auto neighbors = graph.Neighbors(0);
  std::map<int, BridgeKind> by_id;
  for (const SampledNeighbor& n : neighbors) by_id[n.sample_id] = n.via;
  // Column 0: via title t1 -> column 1; via header "player" -> column 2.
  ASSERT_EQ(by_id.size(), 2u);
  EXPECT_EQ(by_id.at(1), BridgeKind::kTitle);
  EXPECT_EQ(by_id.at(2), BridgeKind::kHeader);
}

TEST(ColumnGraphTest, NeighborsExcludeSelf) {
  ColumnGraph graph = ExampleGraph();
  for (int id = 0; id < graph.num_samples(); ++id) {
    for (const SampledNeighbor& n : graph.Neighbors(id)) {
      EXPECT_NE(n.sample_id, id);
    }
  }
}

TEST(ColumnGraphTest, NeighborhoodIsSymmetric) {
  ColumnGraph graph = ExampleGraph();
  for (int a = 0; a < graph.num_samples(); ++a) {
    for (const SampledNeighbor& n : graph.Neighbors(a)) {
      bool found = false;
      for (const SampledNeighbor& back : graph.Neighbors(n.sample_id)) {
        found = found || back.sample_id == a;
      }
      EXPECT_TRUE(found) << a << " -> " << n.sample_id << " not symmetric";
    }
  }
}

TEST(ColumnGraphTest, SampleNeighborsReturnsExactlyR) {
  ColumnGraph graph = ExampleGraph();
  util::Rng rng(1);
  for (int r : {1, 4, 16}) {
    EXPECT_EQ(graph.SampleNeighbors(0, r, rng).size(),
              static_cast<size_t>(r));
  }
}

TEST(ColumnGraphTest, SampleWithReplacementWhenFewNeighbors) {
  ColumnGraph graph = ExampleGraph();
  util::Rng rng(2);
  // Column 3 has a single neighbour (column 2 via title t2).
  const auto sampled = graph.SampleNeighbors(3, 8, rng);
  ASSERT_EQ(sampled.size(), 8u);
  for (const SampledNeighbor& n : sampled) {
    EXPECT_EQ(n.sample_id, 2);
    EXPECT_EQ(n.via, BridgeKind::kTitle);
  }
}

TEST(ColumnGraphTest, IsolatedSampleFallsBackToSelf) {
  ColumnGraph graph = ExampleGraph();
  util::Rng rng(3);
  const auto sampled = graph.SampleNeighbors(4, 4, rng);
  ASSERT_EQ(sampled.size(), 4u);
  for (const SampledNeighbor& n : sampled) {
    EXPECT_EQ(n.sample_id, 4);
    EXPECT_EQ(n.via, BridgeKind::kSelf);
  }
}

TEST(ColumnGraphTest, SamplingNeverReturnsSelfWhenNeighborsExist) {
  ColumnGraph graph = ExampleGraph();
  util::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    for (const SampledNeighbor& n : graph.SampleNeighbors(0, 4, rng)) {
      EXPECT_NE(n.sample_id, 0);
    }
  }
}

TEST(ColumnGraphTest, SamplingCoversAllNeighborsEventually) {
  ColumnGraph graph = ExampleGraph();
  util::Rng rng(5);
  std::set<int> seen;
  for (int trial = 0; trial < 100; ++trial) {
    for (const SampledNeighbor& n : graph.SampleNeighbors(0, 2, rng)) {
      seen.insert(n.sample_id);
    }
  }
  EXPECT_EQ(seen, (std::set<int>{1, 2}));
}

TEST(ColumnGraphTest, PairGraphKeysKeepDirectionality) {
  // Column-pair graph: header-pair key "a||b" differs from "b||a".
  ColumnGraph graph;
  graph.AddSample(0, "t", "a||b");
  graph.AddSample(1, "t", "b||a");
  graph.AddSample(2, "u", "a||b");
  const auto neighbors = graph.Neighbors(0);
  std::map<int, BridgeKind> by_id;
  for (const SampledNeighbor& n : neighbors) by_id[n.sample_id] = n.via;
  EXPECT_EQ(by_id.at(1), BridgeKind::kTitle);   // Same table only.
  EXPECT_EQ(by_id.at(2), BridgeKind::kHeader);  // Same ordered pair.
}

TEST(BridgeKindTest, Names) {
  EXPECT_STREQ(BridgeKindName(BridgeKind::kTitle), "title");
  EXPECT_STREQ(BridgeKindName(BridgeKind::kHeader), "header");
  EXPECT_STREQ(BridgeKindName(BridgeKind::kSelf), "self");
}

}  // namespace
}  // namespace explainti::graph
