#ifndef EXPLAINTI_TESTS_GOLDEN_EVIDENCE_H_
#define EXPLAINTI_TESTS_GOLDEN_EVIDENCE_H_

#include <set>
#include <string>
#include <vector>

#include "core/evidence.h"
#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "core/task_data.h"
#include "data/corpus.h"
#include "data/wiki_generator.h"

namespace explainti::testing {

/// Shared golden explanation-evidence fixture.
///
/// One canonical (corpus, config, sample set, window count) consumed by
/// every suite that scores explanation evidence — the plan-verify tests
/// and the quantized accuracy gate — so "the paths agree on the golden
/// evidence" means the same thing everywhere: same tables, same samples,
/// same top-k windows, same token-set comparison (core/evidence.h).

/// Deterministic generator: same options → same tables, every consumer.
inline data::TableCorpus GoldenCorpus() {
  data::WikiTableOptions options;
  options.num_tables = 28;
  return data::GenerateWikiTableCorpus(options);
}

inline core::ExplainTiConfig GoldenConfig() {
  core::ExplainTiConfig config;
  config.base_model = "bert";
  config.sample_size = 4;
  config.top_k = 3;
  return config;
}

/// Local windows counted as "the evidence" of an explanation.
inline constexpr size_t kGoldenTopWindows = 3;

/// The golden sample ids of one task: a fixed, corpus-order stride so the
/// set is stable run to run and covers distinct sequence lengths.
inline std::vector<int> GoldenSampleIds(const core::TaskData& task) {
  std::vector<int> ids;
  const int n = static_cast<int>(task.samples.size());
  for (int id = 0; id < n && static_cast<int>(ids.size()) < 6; id += 3) {
    ids.push_back(id);
  }
  return ids;
}

/// Evidence token sets for the golden samples of `kind`, one per id.
inline std::vector<std::set<std::string>> GoldenEvidence(
    const core::InferenceSession& session, core::TaskKind kind) {
  std::vector<std::set<std::string>> evidence;
  for (int id : GoldenSampleIds(session.task_data(kind))) {
    evidence.push_back(core::TopEvidenceTokens(session.Explain(kind, id),
                                               kGoldenTopWindows));
  }
  return evidence;
}

/// Mean per-sample Jaccard agreement of two evidence runs.
inline double MeanEvidenceAgreement(
    const std::vector<std::set<std::string>>& a,
    const std::vector<std::set<std::string>>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += core::EvidenceAgreement(a[i], b[i]);
  }
  return total / static_cast<double>(a.size());
}

}  // namespace explainti::testing

#endif  // EXPLAINTI_TESTS_GOLDEN_EVIDENCE_H_
