#ifndef EXPLAINTI_TESTS_GOLDEN_EVIDENCE_H_
#define EXPLAINTI_TESTS_GOLDEN_EVIDENCE_H_

#include <set>
#include <string>
#include <vector>

#include "core/evidence.h"
#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "core/task_data.h"
#include "data/corpus.h"
#include "data/wiki_generator.h"
#include "eval/human_sim.h"
#include "qa/query.h"
#include "text/tokenizer.h"

namespace explainti::testing {

/// Shared golden explanation-evidence fixture.
///
/// One canonical (corpus, config, sample set, window count) consumed by
/// every suite that scores explanation evidence — the plan-verify tests
/// and the quantized accuracy gate — so "the paths agree on the golden
/// evidence" means the same thing everywhere: same tables, same samples,
/// same top-k windows, same token-set comparison (core/evidence.h).

/// Deterministic generator: same options → same tables, every consumer.
inline data::TableCorpus GoldenCorpus() {
  data::WikiTableOptions options;
  options.num_tables = 28;
  return data::GenerateWikiTableCorpus(options);
}

inline core::ExplainTiConfig GoldenConfig() {
  core::ExplainTiConfig config;
  config.base_model = "bert";
  config.sample_size = 4;
  config.top_k = 3;
  return config;
}

/// Local windows counted as "the evidence" of an explanation.
inline constexpr size_t kGoldenTopWindows = 3;

/// The golden sample ids of one task: a fixed, corpus-order stride so the
/// set is stable run to run and covers distinct sequence lengths.
inline std::vector<int> GoldenSampleIds(const core::TaskData& task) {
  std::vector<int> ids;
  const int n = static_cast<int>(task.samples.size());
  for (int id = 0; id < n && static_cast<int>(ids.size()) < 6; id += 3) {
    ids.push_back(id);
  }
  return ids;
}

/// Evidence token sets for the golden samples of `kind`, one per id.
inline std::vector<std::set<std::string>> GoldenEvidence(
    const core::InferenceSession& session, core::TaskKind kind) {
  std::vector<std::set<std::string>> evidence;
  for (int id : GoldenSampleIds(session.task_data(kind))) {
    evidence.push_back(core::TopEvidenceTokens(session.Explain(kind, id),
                                               kGoldenTopWindows));
  }
  return evidence;
}

/// Fraction of `items` that mention at least one token of `evidence` —
/// the per-item rule src/eval/human_sim scores EvidenceCoverage with,
/// reimplemented over raw strings so tests can score arbitrary pools of
/// justification items. Empty pools score 0.
inline double ItemEvidenceFraction(const std::vector<std::string>& items,
                                   const std::set<std::string>& evidence) {
  if (items.empty()) return 0.0;
  int covering = 0;
  for (const std::string& item : items) {
    for (const std::string& token : text::BasicTokenize(item)) {
      if (evidence.count(token) > 0) {
        ++covering;
        break;
      }
    }
  }
  return static_cast<double>(covering) / static_cast<double>(items.size());
}

/// Evidence coverage of a composed QA justification, in two framings over
/// the SAME item pool:
///  - `constituent`: each item judged against the oracle evidence of the
///    single prediction (step) it was assembled from — the coverage its
///    source explanation would score on its own;
///  - `composed`: the pooled items judged against the union of every
///    step's oracle evidence — the coverage of the composed answer.
/// Composition widens the evidence an item may hit without rewriting the
/// items, so `composed >= constituent` whenever the composition machinery
/// preserves item text and step provenance; a regression below that is a
/// composition bug (truncated/rewritten items, wrong step indices).
struct QaCoverage {
  double constituent = 0.0;
  double composed = 0.0;
  int items = 0;
};

inline QaCoverage ComposedJustificationCoverage(
    const core::TaskData& task, const qa::QaJustification& justification) {
  std::set<std::string> union_evidence;
  std::vector<std::set<std::string>> step_evidence;
  step_evidence.reserve(justification.steps.size());
  for (const qa::QaStep& step : justification.steps) {
    std::set<std::string> tokens;
    if (step.sample_id >= 0 &&
        step.sample_id < static_cast<int>(task.samples.size())) {
      for (const std::string& token :
           task.samples[static_cast<size_t>(step.sample_id)].evidence) {
        tokens.insert(token);
        union_evidence.insert(token);
      }
    }
    step_evidence.push_back(std::move(tokens));
  }
  QaCoverage coverage;
  coverage.items = static_cast<int>(justification.items.size());
  if (justification.items.empty()) return coverage;
  int covering_own = 0;
  int covering_union = 0;
  for (const qa::QaEvidenceItem& item : justification.items) {
    const bool has_step =
        item.step >= 0 &&
        item.step < static_cast<int>(step_evidence.size());
    bool own = false;
    bool unioned = false;
    for (const std::string& token : text::BasicTokenize(item.text)) {
      if (has_step && step_evidence[static_cast<size_t>(item.step)].count(
                          token) > 0) {
        own = true;
      }
      if (union_evidence.count(token) > 0) unioned = true;
      if (own && unioned) break;
    }
    covering_own += own ? 1 : 0;
    covering_union += unioned ? 1 : 0;
  }
  coverage.constituent = static_cast<double>(covering_own) /
                         static_cast<double>(justification.items.size());
  coverage.composed = static_cast<double>(covering_union) /
                      static_cast<double>(justification.items.size());
  return coverage;
}

/// Renders a composed QA answer as simulated-judge inputs: one
/// JudgedExplanation per answer entry, whose items are the justification
/// items citing that entry's step and whose oracle evidence is the
/// entry's sample evidence — so SimulateJudges scores composed answers
/// exactly like single-prediction explanations.
inline std::vector<eval::JudgedExplanation> JudgedQaAnswer(
    const core::TaskData& task, const qa::QaAnswer& answer) {
  std::vector<eval::JudgedExplanation> judged;
  judged.reserve(answer.entries.size());
  for (const qa::QaAnswerEntry& entry : answer.entries) {
    eval::JudgedExplanation sample;
    for (const qa::QaEvidenceItem& item : answer.justification.items) {
      if (item.step == entry.step) sample.items.push_back(item.text);
    }
    if (entry.sample_id >= 0 &&
        entry.sample_id < static_cast<int>(task.samples.size())) {
      const core::TaskSample& source =
          task.samples[static_cast<size_t>(entry.sample_id)];
      sample.evidence = source.evidence;
      sample.sample_tokens = static_cast<int>(source.seq.tokens.size());
      sample.prediction_correct = entry.labels == source.labels;
    }
    judged.push_back(std::move(sample));
  }
  return judged;
}

/// Mean per-sample Jaccard agreement of two evidence runs.
inline double MeanEvidenceAgreement(
    const std::vector<std::set<std::string>>& a,
    const std::vector<std::set<std::string>>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += core::EvidenceAgreement(a[i], b[i]);
  }
  return total / static_cast<double>(a.size());
}

}  // namespace explainti::testing

#endif  // EXPLAINTI_TESTS_GOLDEN_EVIDENCE_H_
