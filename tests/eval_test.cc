#include <gtest/gtest.h>

#include "eval/f1_metrics.h"
#include "eval/human_sim.h"
#include "eval/sufficiency.h"

namespace explainti::eval {
namespace {

TEST(F1Test, PerfectPredictionsScoreOne) {
  std::vector<LabeledPrediction> predictions = {
      {{0}, {0}}, {{1}, {1}}, {{2}, {2}}};
  const F1Scores f1 = ComputeF1(predictions, 3);
  EXPECT_DOUBLE_EQ(f1.micro, 1.0);
  EXPECT_DOUBLE_EQ(f1.macro, 1.0);
  EXPECT_DOUBLE_EQ(f1.weighted, 1.0);
}

TEST(F1Test, AllWrongScoresZero) {
  std::vector<LabeledPrediction> predictions = {{{0}, {1}}, {{1}, {0}}};
  const F1Scores f1 = ComputeF1(predictions, 2);
  EXPECT_DOUBLE_EQ(f1.micro, 0.0);
  EXPECT_DOUBLE_EQ(f1.macro, 0.0);
  EXPECT_DOUBLE_EQ(f1.weighted, 0.0);
}

TEST(F1Test, HandComputedMultiClassCase) {
  // Label 0: tp=1 fp=1 fn=0 -> P=0.5 R=1 F1=2/3.
  // Label 1: tp=0 fp=0 fn=1 -> F1=0.
  std::vector<LabeledPrediction> predictions = {{{0}, {0}}, {{1}, {0}}};
  const F1Scores f1 = ComputeF1(predictions, 2);
  EXPECT_NEAR(f1.micro, 0.5, 1e-9);  // tp=1, fp=1, fn=1.
  EXPECT_NEAR(f1.macro, (2.0 / 3.0) / 2.0, 1e-9);
  EXPECT_NEAR(f1.weighted, (2.0 / 3.0 * 1 + 0.0 * 1) / 2.0, 1e-9);
}

TEST(F1Test, MultiLabelPartialOverlap) {
  // gold {0,1}, predicted {1,2}: tp(1)=1, fp(2)=1, fn(0)=1.
  std::vector<LabeledPrediction> predictions = {{{0, 1}, {1, 2}}};
  const F1Scores f1 = ComputeF1(predictions, 3);
  EXPECT_NEAR(f1.micro, 2.0 * 1 / (2.0 * 1 + 1 + 1), 1e-9);
}

TEST(F1Test, WeightedUsesSupport) {
  // Label 0 has support 3 (all correct), label 1 support 1 (wrong):
  // weighted = (1*3 + 0*1)/4 = 0.75; macro = 0.5.
  std::vector<LabeledPrediction> predictions = {
      {{0}, {0}}, {{0}, {0}}, {{0}, {0}}, {{1}, {0}}};
  const F1Scores f1 = ComputeF1(predictions, 2);
  EXPECT_GT(f1.weighted, f1.macro);
  EXPECT_NEAR(f1.macro, 0.5 * (6.0 / 7.0), 1e-9);  // L0: 2*3/(6+1)=6/7.
  EXPECT_NEAR(f1.weighted, (6.0 / 7.0) * 0.75, 1e-9);
}

TEST(F1Test, UnseenLabelsDiluteMacroOnly) {
  std::vector<LabeledPrediction> predictions = {{{0}, {0}}};
  const F1Scores f1 = ComputeF1(predictions, 10);
  EXPECT_DOUBLE_EQ(f1.micro, 1.0);
  EXPECT_DOUBLE_EQ(f1.weighted, 1.0);
  EXPECT_NEAR(f1.macro, 0.1, 1e-9);
}

TEST(SufficiencyTest, SeparableTextsScoreHigh) {
  ExplanationDataset dataset;
  dataset.num_labels = 2;
  dataset.multi_label = false;
  for (int i = 0; i < 40; ++i) {
    const bool positive = i % 2 == 0;
    dataset.train_texts.push_back(positive ? "lakers celtics basketball"
                                           : "rome paris country");
    dataset.train_labels.push_back({positive ? 0 : 1});
  }
  for (int i = 0; i < 10; ++i) {
    const bool positive = i % 2 == 0;
    dataset.test_texts.push_back(positive ? "celtics basketball game"
                                          : "paris country capital");
    dataset.test_labels.push_back({positive ? 0 : 1});
  }
  const F1Scores f1 = EvaluateSufficiency(dataset);
  EXPECT_GT(f1.weighted, 0.9);
}

TEST(SufficiencyTest, UninformativeTextsScoreLow) {
  ExplanationDataset dataset;
  dataset.num_labels = 4;
  dataset.multi_label = false;
  for (int i = 0; i < 60; ++i) {
    dataset.train_texts.push_back("the same text every time");
    dataset.train_labels.push_back({i % 4});
  }
  for (int i = 0; i < 20; ++i) {
    dataset.test_texts.push_back("the same text every time");
    dataset.test_labels.push_back({i % 4});
  }
  const F1Scores f1 = EvaluateSufficiency(dataset);
  EXPECT_LT(f1.macro, 0.5);
}

JudgedExplanation Covering() {
  JudgedExplanation j;
  j.items = {"title nba draft player", "header player cell"};
  j.evidence = {"nba", "player"};
  j.prediction_correct = true;
  j.sample_tokens = 30;
  return j;
}

JudgedExplanation NonCovering() {
  JudgedExplanation j;
  j.items = {"random words here", "nothing relevant"};
  j.evidence = {"nba", "player"};
  j.prediction_correct = true;
  j.sample_tokens = 30;
  return j;
}

TEST(HumanSimTest, CoveringExplanationsScoreHigher) {
  std::vector<JudgedExplanation> good(20, Covering());
  std::vector<JudgedExplanation> bad(20, NonCovering());
  const HumanEvalResult good_result = SimulateJudges(good, 20, 1);
  const HumanEvalResult bad_result = SimulateJudges(bad, 20, 1);
  EXPECT_GT(good_result.adequacy_pct, bad_result.adequacy_pct + 20.0);
  EXPECT_GT(good_result.mean_trust, bad_result.mean_trust + 0.5);
  EXPECT_GT(good_result.evidence_coverage, 0.9);
  EXPECT_LT(bad_result.evidence_coverage, 0.1);
}

TEST(HumanSimTest, SingleTokenItemsReadWorseThanPhrases) {
  JudgedExplanation scattered;
  scattered.items = {"nba", "player", "cell", "the", "of"};
  scattered.evidence = {"nba", "player"};
  scattered.prediction_correct = true;
  scattered.sample_tokens = 30;
  std::vector<JudgedExplanation> tokens(20, scattered);
  std::vector<JudgedExplanation> phrases(20, Covering());
  const HumanEvalResult token_result = SimulateJudges(tokens, 20, 2);
  const HumanEvalResult phrase_result = SimulateJudges(phrases, 20, 2);
  EXPECT_GT(phrase_result.understandability_pct,
            token_result.understandability_pct);
}

TEST(HumanSimTest, ResultsDeterministicPerSeed) {
  std::vector<JudgedExplanation> samples(10, Covering());
  const HumanEvalResult a = SimulateJudges(samples, 10, 5);
  const HumanEvalResult b = SimulateJudges(samples, 10, 5);
  EXPECT_DOUBLE_EQ(a.adequacy_pct, b.adequacy_pct);
  EXPECT_DOUBLE_EQ(a.mean_trust, b.mean_trust);
}

TEST(VerificationSimTest, CoveringExplanationsSaveTime) {
  std::vector<JudgedExplanation> good(30, Covering());
  const VerificationOutcome outcome = SimulateVerification(good, 3);
  EXPECT_GT(outcome.reduction_pct, 5.0);
  EXPECT_LT(outcome.mean_seconds_with, outcome.mean_seconds_without);
}

TEST(VerificationSimTest, UselessExplanationsCostTime) {
  std::vector<JudgedExplanation> bad(30, NonCovering());
  const VerificationOutcome outcome = SimulateVerification(bad, 4);
  // Reading explanations that do not cover the evidence adds overhead.
  EXPECT_LT(outcome.reduction_pct, 5.0);
}

}  // namespace
}  // namespace explainti::eval
