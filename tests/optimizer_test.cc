#include "tensor/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace explainti::tensor {
namespace {

TEST(LinearScheduleTest, WarmupRampsLinearly) {
  LinearSchedule schedule(1.0f, 100, 10);
  EXPECT_NEAR(schedule.LearningRate(0), 0.1f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRate(4), 0.5f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRate(9), 1.0f, 1e-6f);
}

TEST(LinearScheduleTest, DecaysToZero) {
  LinearSchedule schedule(1.0f, 100, 0);
  EXPECT_NEAR(schedule.LearningRate(0), 1.0f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRate(50), 0.5f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRate(100), 0.0f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRate(500), 0.0f, 1e-6f);
}

TEST(AdamWTest, MinimizesQuadratic) {
  // Minimise sum((w - target)^2); AdamW should converge close to target.
  Tensor w = Tensor::FromVector({3}, {5.0f, -4.0f, 2.0f});
  w.set_requires_grad(true);
  Tensor target = Tensor::FromVector({3}, {1.0f, 2.0f, -1.0f});

  AdamWOptions options;
  options.learning_rate = 0.1f;
  options.weight_decay = 0.0f;
  AdamW optimizer({w}, options);

  for (int step = 0; step < 300; ++step) {
    optimizer.ZeroGrad();
    Tensor diff = Sub(w, target);
    Tensor loss = Sum(Mul(diff, diff));
    loss.Backward();
    optimizer.Step();
  }
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(w.at(i), target.at(i), 0.05f);
  }
}

TEST(AdamWTest, WeightDecayShrinksWeightsWithZeroGradient) {
  Tensor w = Tensor::Full({2}, 4.0f);
  w.set_requires_grad(true);
  w.grad();  // Allocate a zero gradient.
  AdamWOptions options;
  options.learning_rate = 0.1f;
  options.weight_decay = 0.5f;
  options.max_grad_norm = 0.0f;
  AdamW optimizer({w}, options);
  optimizer.Step();
  EXPECT_LT(w.at(0), 4.0f);
}

TEST(AdamWTest, GradientClippingBoundsUpdateDirection) {
  Tensor w = Tensor::Full({1}, 0.0f);
  w.set_requires_grad(true);
  AdamWOptions options;
  options.learning_rate = 1.0f;
  options.weight_decay = 0.0f;
  options.max_grad_norm = 1.0f;
  AdamW optimizer({w}, options);

  optimizer.ZeroGrad();
  Tensor loss = Scale(Sum(w), 1e6f);  // Huge gradient.
  loss.Backward();
  optimizer.Step();
  // Adam normalises by sqrt(v); with one step update magnitude ~ lr.
  EXPECT_LE(std::abs(w.at(0)), 1.5f);
}

TEST(AdamWTest, StepCountAdvances) {
  Tensor w = Tensor::Full({1}, 1.0f);
  w.set_requires_grad(true);
  AdamW optimizer({w}, AdamWOptions{});
  EXPECT_EQ(optimizer.step_count(), 0);
  optimizer.Step();
  optimizer.Step();
  EXPECT_EQ(optimizer.step_count(), 2);
}

TEST(SgdTest, DescendsGradient) {
  Tensor w = Tensor::Full({1}, 2.0f);
  w.set_requires_grad(true);
  Sgd optimizer({w}, 0.5f);
  optimizer.ZeroGrad();
  Tensor loss = Sum(Mul(w, w));  // dL/dw = 2w = 4.
  loss.Backward();
  optimizer.Step();
  EXPECT_NEAR(w.at(0), 0.0f, 1e-5f);
}

}  // namespace
}  // namespace explainti::tensor
