// Chaos harness for the table-QA cascade: the three QA fault sites —
// qa.surrogate_build (distillation), qa.surrogate_score (first-tier
// inference), qa.compose (answer assembly) — are armed in turn under
// live traffic, including mid-hot-swap. Every failure must degrade to
// the teacher-only path with a typed Status: answers are either
// bit-identical to a cascade-off build or a typed error, never wrong
// and never partial. Runs under the `chaos` ctest label.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"
#include "golden_evidence.h"
#include "qa/engine.h"
#include "qa/query.h"
#include "serve/server.h"
#include "util/fault_injection.h"

namespace explainti::qa {
namespace {

using core::ExplainTiModel;
using core::InferenceSession;
using core::TaskKind;
using util::fault::FaultKind;
using util::fault::FaultRegistry;
using util::fault::FaultSpec;

class ArmedFault {
 public:
  ArmedFault(const std::string& site, util::StatusCode code,
             int every_n = 1, int max_fires = -1) {
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.code = code;
    spec.message = "chaos: " + site;
    spec.every_n = every_n;
    spec.max_fires = max_fires;
    FaultRegistry::Instance().Arm(site, spec);
  }
  ~ArmedFault() { FaultRegistry::Instance().DisarmAll(); }
};

struct SharedModel {
  SharedModel()
      : corpus(explainti::testing::GoldenCorpus()),
        model(explainti::testing::GoldenConfig(), corpus) {
    model.RefreshStores();
  }
  data::TableCorpus corpus;
  ExplainTiModel model;
};

const SharedModel& Shared() {
  static const SharedModel* shared = new SharedModel();
  return *shared;
}

QaOptions CascadeOptions() {
  QaOptions options;
  options.enable_surrogate = true;
  options.surrogate_epochs = 20;
  options.distill_max_samples = 8;
  return options;
}

QaQuery FindQuery() {
  const InferenceSession& session = Shared().model.session();
  QaQuery query;
  query.kind = QaQueryKind::kFindColumnsOfType;
  const int n = static_cast<int>(
      session.task_data(TaskKind::kType).samples.size());
  for (int id = 0; id < n && id < 6; ++id) query.sample_ids.push_back(id);
  query.label_id = session.Predict(TaskKind::kType, 0)[0];
  query.top_k = 6;
  return query;
}

serve::ServeRequest QaRequest(const QaQuery& query) {
  serve::ServeRequest request;
  request.method = serve::ServeMethod::kQaAnswer;
  request.qa = query;
  return request;
}

class QaChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

// Distillation failure at construction: the engine comes up fail-closed
// — teacher-only with the typed root cause — and every answer is
// bit-identical to a cascade-off build.
TEST_F(QaChaosTest, BuildFaultFailsClosedToTeacherOnly) {
  const InferenceSession& session = Shared().model.session();
  QaEngine reference(&session, QaOptions{});
  const QaQuery query = FindQuery();
  auto expected = reference.Answer(query);
  ASSERT_TRUE(expected.ok());

  ArmedFault fault("qa.surrogate_build", util::StatusCode::kInternal);
  QaEngine crippled(&session, CascadeOptions());
  EXPECT_FALSE(crippled.surrogate_active());
  EXPECT_EQ(crippled.surrogate_status().code(),
            util::StatusCode::kInternal);

  auto answer = crippled.Answer(query);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(SameAnswer(expected.value(), answer.value()));
  EXPECT_EQ(answer.value().surrogate_steps, 0);
  EXPECT_FALSE(answer.value().surrogate_status.ok());
}

// Score failure mid-answer: the partially-surrogate composition is
// abandoned, the tier trips, and the SAME query is recomposed entirely
// on the teacher — bit-identical, no mixed-tier artefacts. The trip is
// sticky across the disarm.
TEST_F(QaChaosTest, ScoreFaultMidAnswerRecomposesOnTeacher) {
  const InferenceSession& session = Shared().model.session();
  QaEngine reference(&session, QaOptions{});
  QaEngine cascade(&session, CascadeOptions());
  ASSERT_TRUE(cascade.surrogate_active());
  const QaQuery query = FindQuery();
  auto expected = reference.Answer(query);
  ASSERT_TRUE(expected.ok());

  {
    // Fire on the 3rd score: the first two candidates were already
    // surrogate-scored when the fault lands, so this exercises the
    // abandon-partial-work path, not just the first-call path.
    ArmedFault fault("qa.surrogate_score", util::StatusCode::kIoError,
                     /*every_n=*/3, /*max_fires=*/1);
    auto degraded = cascade.Answer(query);
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    EXPECT_TRUE(SameAnswer(expected.value(), degraded.value()));
    EXPECT_EQ(degraded.value().surrogate_steps, 0);
    EXPECT_EQ(degraded.value().surrogate_status.code(),
              util::StatusCode::kIoError);
  }
  EXPECT_FALSE(cascade.surrogate_active());
  auto after = cascade.Answer(query);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(SameAnswer(expected.value(), after.value()));
  EXPECT_EQ(cascade.surrogate_status().code(),
            util::StatusCode::kIoError);
}

// Compose failure is a typed error for the whole answer — no partial
// entries, no partial justification — and through the server it
// completes the request with that status (never a dropped callback).
TEST_F(QaChaosTest, ComposeFaultIsTypedThroughTheServer) {
  const InferenceSession& session = Shared().model.session();
  serve::ServerOptions options;
  options.num_workers = 2;
  options.qa.enabled = true;
  serve::InferenceServer server(session, options);
  const QaQuery query = FindQuery();

  const serve::ServeResponse healthy = server.ServeSync(QaRequest(query));
  ASSERT_TRUE(healthy.status.ok()) << healthy.status.ToString();

  {
    ArmedFault fault("qa.compose", util::StatusCode::kInternal,
                     /*every_n=*/2);
    int ok = 0, failed = 0;
    for (int i = 0; i < 8; ++i) {
      const serve::ServeResponse response =
          server.ServeSync(QaRequest(query));
      if (response.status.ok()) {
        // Served answers are complete and identical to the healthy one.
        EXPECT_TRUE(SameAnswer(healthy.qa, response.qa));
        ++ok;
      } else {
        EXPECT_EQ(response.status.code(), util::StatusCode::kInternal);
        EXPECT_TRUE(response.qa.entries.empty());
        EXPECT_TRUE(response.qa.justification.steps.empty());
        ++failed;
      }
    }
    EXPECT_EQ(ok + failed, 8);
    EXPECT_GT(failed, 0);
    EXPECT_EQ(server.metrics().GetCounter("qa.failed")->Value(), failed);
  }
  // Cleared fault: healthy again, and failures were never cached.
  const serve::ServeResponse recovered = server.ServeSync(QaRequest(query));
  ASSERT_TRUE(recovered.status.ok());
  EXPECT_TRUE(SameAnswer(healthy.qa, recovered.qa));
}

// Distillation outage during a rollout: the swap itself must still
// succeed (QA is fail-closed, never fail-open and never swap-blocking),
// and the new generation serves teacher-only QA with the typed status.
TEST_F(QaChaosTest, BuildFaultMidHotSwapServesTeacherOnlyOnNewGeneration) {
  const SharedModel& shared = Shared();
  const InferenceSession& session = shared.model.session();
  const std::string checkpoint = ::testing::TempDir() + "/qa_chaos_swap.bin";
  ASSERT_TRUE(shared.model.SaveWeights(checkpoint).ok());
  util::StatusOr<std::unique_ptr<ExplainTiModel>> replica =
      core::LoadReplicaForSwap(explainti::testing::GoldenConfig(),
                               shared.corpus, checkpoint);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();

  serve::ServerOptions options;
  options.num_workers = 2;
  options.qa.enabled = true;
  options.qa.options = CascadeOptions();
  serve::InferenceServer server(session, options);
  ASSERT_NE(server.qa_engine(), nullptr);
  ASSERT_TRUE(server.qa_engine()->surrogate_active());

  const QaQuery query = FindQuery();
  // Teacher-only reference from a cascade-off engine on the same model.
  QaEngine reference(&session, QaOptions{});
  auto expected = reference.Answer(query);
  ASSERT_TRUE(expected.ok());

  {
    ArmedFault fault("qa.surrogate_build", util::StatusCode::kIoError);
    ASSERT_TRUE(server.SwapSession(replica.value()->session()).ok());
  }
  EXPECT_EQ(server.current_generation(), 2u);
  ASSERT_NE(server.qa_engine(), nullptr);
  EXPECT_FALSE(server.qa_engine()->surrogate_active());
  EXPECT_EQ(server.qa_engine()->surrogate_status().code(),
            util::StatusCode::kIoError);

  const serve::ServeResponse response = server.ServeSync(QaRequest(query));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.model_generation, 2u);
  // Same weights via the checkpoint round-trip: the teacher-only answer
  // on generation 2 is bit-identical to the cascade-off reference.
  EXPECT_TRUE(SameAnswer(expected.value(), response.qa));
  EXPECT_EQ(response.qa.surrogate_steps, 0);
  EXPECT_FALSE(response.qa.surrogate_status.ok());
  EXPECT_EQ(server.metrics().GetCounter("qa.surrogate_answered")->Value(),
            0);
}

// Sustained score outage under live server traffic: the first fault
// trips the tier, and from then on every response is OK, teacher-tier,
// and identical — the cascade never flaps back to a broken surrogate.
TEST_F(QaChaosTest, ScoreStormUnderLiveTrafficNeverServesWrongAnswers) {
  const InferenceSession& session = Shared().model.session();
  serve::ServerOptions options;
  options.num_workers = 2;
  options.qa.enabled = true;
  options.qa.options = CascadeOptions();
  options.qa.options.confidence_threshold = 0.0f;  // All-surrogate routing.
  serve::InferenceServer server(session, options);
  ASSERT_TRUE(server.qa_engine()->surrogate_active());

  QaEngine reference(&session, QaOptions{});
  const QaQuery query = FindQuery();
  auto expected = reference.Answer(query);
  ASSERT_TRUE(expected.ok());

  ArmedFault fault("qa.surrogate_score", util::StatusCode::kIoError);
  for (int i = 0; i < 6; ++i) {
    const serve::ServeResponse response = server.ServeSync(QaRequest(query));
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(SameAnswer(expected.value(), response.qa));
    EXPECT_EQ(response.qa.surrogate_steps, 0);
    EXPECT_EQ(response.qa.surrogate_status.code(),
              util::StatusCode::kIoError);
  }
  EXPECT_EQ(server.metrics().GetCounter("qa.surrogate_answered")->Value(),
            0);
  EXPECT_EQ(server.metrics().GetCounter("qa.answered")->Value(), 6);
}

}  // namespace
}  // namespace explainti::qa
