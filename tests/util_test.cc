#include <algorithm>
#include <iostream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace explainti::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, StatusOrValuePath) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusTest, StatusOrErrorPath) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ServingCodesRoundTrip) {
  Status deadline = Status::DeadlineExceeded("request expired in queue");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: request expired in queue");

  Status shed = Status::ResourceExhausted("admission queue full");
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.ToString(), "ResourceExhausted: admission queue full");
}

TEST(StatusDeathTest, StatusOrValueOnErrorAbortsWithStatus) {
  StatusOr<int> result = Status::NotFound("missing checkpoint");
  // value() on an error is a programming bug; it must CHECK-fail with the
  // carried status, not throw an opaque exception.
  EXPECT_DEATH((void)result.value(), "missing checkpoint");
}

TEST(LoggingTest, ConcurrentMessagesStayIntact) {
  std::ostringstream captured;
  std::streambuf* old_buf = std::cerr.rdbuf(captured.rdbuf());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        LOG(WARNING) << "intact[" << t << ":" << i << "]";
      }
    });
  }
  for (std::thread& th : threads) th.join();
  std::cerr.rdbuf(old_buf);

  // The sink mutex makes each message one atomic line: every captured
  // line carries exactly one marker, never a torn interleaving.
  std::istringstream lines(captured.str());
  std::string line;
  int markers = 0;
  while (std::getline(lines, line)) {
    const size_t first = line.find("intact[");
    if (first == std::string::npos) continue;
    ++markers;
    EXPECT_EQ(first, line.rfind("intact[")) << "torn line: " << line;
    EXPECT_NE(line.find(']', first), std::string::npos);
  }
  EXPECT_EQ(markers, 200);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a.Next() != b.Next();
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalHasRoughlyUnitVariance) {
  Rng rng(4);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(6);
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.Categorical({1.0, 3.0})];
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / 10000.0, 0.75, 0.03);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(7);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 6);
  EXPECT_EQ(sample.size(), 6u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
  for (size_t s : sample) EXPECT_LT(s, 10u);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, JoinWithSeparator) {
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ToLowerAscii) { EXPECT_EQ(ToLower("AbC1"), "abc1"); }

TEST(StringUtilTest, TrimBothEnds) { EXPECT_EQ(Trim("  hi \n"), "hi"); }

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("##sub", "##"));
  EXPECT_FALSE(StartsWith("#sub", "##"));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("12345"));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits(""));
}

TEST(StringUtilTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(0.94449, 3), "0.944");
  EXPECT_EQ(FormatDouble(1.0, 1), "1.0");
}

TEST(TablePrinterTest, AlignsColumnsAndPads) {
  TablePrinter printer({"a", "long header"});
  printer.AddRow({"xxxx", "y"});
  std::ostringstream os;
  printer.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a    | long header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxx | y           |"), std::string::npos);
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter printer({"a", "b"});
  printer.AddRow({"only"});
  std::ostringstream os;
  printer.Print(os);
  EXPECT_NE(os.str().find("| only |"), std::string::npos);
}

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotonic) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(DeadlineTest, MonotonicNowAdvances) {
  const int64_t t1 = MonotonicNowUs();
  const int64_t t2 = MonotonicNowUs();
  EXPECT_GT(t1, 0);
  EXPECT_GE(t2, t1);
}

TEST(DeadlineTest, DeadlineAfterUsOffsetsFromNow) {
  const int64_t before = MonotonicNowUs();
  const int64_t deadline = DeadlineAfterUs(1'000'000);
  EXPECT_GE(deadline, before + 1'000'000);
  // An in-the-future deadline is not expired; one in the past is.
  EXPECT_FALSE(DeadlineExpired(deadline));
  EXPECT_TRUE(DeadlineExpired(before - 1));
}

TEST(DeadlineTest, NonPositiveTimeoutMeansNoDeadline) {
  EXPECT_EQ(DeadlineAfterUs(0), kNoDeadline);
  EXPECT_EQ(DeadlineAfterUs(-5), kNoDeadline);
  // kNoDeadline never expires, even against an arbitrarily large now.
  EXPECT_FALSE(DeadlineExpired(kNoDeadline, kNoDeadline - 1));
  EXPECT_FALSE(DeadlineExpired(kNoDeadline));
}

TEST(DeadlineTest, HugeTimeoutSaturatesToNoDeadlineInsteadOfWrapping) {
  // now + timeout would overflow int64 for these; a wrap would produce a
  // deadline in the distant past and instantly expire every request.
  EXPECT_EQ(DeadlineAfterUs(kNoDeadline), kNoDeadline);
  EXPECT_EQ(DeadlineAfterUs(kNoDeadline - 1), kNoDeadline);
  const int64_t saturated = DeadlineAfterUs(kNoDeadline - MonotonicNowUs());
  EXPECT_EQ(saturated, kNoDeadline);
  EXPECT_FALSE(DeadlineExpired(saturated));
}

TEST(DeadlineTest, LargeFiniteTimeoutStaysFiniteAndUnexpired) {
  // A century in microseconds: far away, but nowhere near overflow —
  // must NOT saturate (a finite requested deadline stays finite).
  const int64_t century_us = 100LL * 365 * 24 * 3600 * 1'000'000;
  const int64_t deadline = DeadlineAfterUs(century_us);
  EXPECT_NE(deadline, kNoDeadline);
  EXPECT_GT(deadline, MonotonicNowUs());
  EXPECT_FALSE(DeadlineExpired(deadline));
}

// -- Hashing ----------------------------------------------------------------

// Regression pin for the deduplicated token-feature hash: the legacy
// basis (the standard FNV offset basis missing its last decimal digit)
// is load-bearing — feature extractors bucket tokens by hash % dim, so
// any change to the constant, the prime, or the byte order silently
// remaps every bag-of-words feature. These values were computed from the
// original hand-rolled HashToken copies in baselines/column_features.cc
// and eval/sufficiency.cc before they were unified onto util/hash.h.
TEST(HashTest, TokenFeatureHashValuesArePinned) {
  EXPECT_EQ(kFnvLegacyTokenBasis, 1469598103934665603ULL);
  EXPECT_EQ(HashTokenFeature(""), 1469598103934665603ULL);
  EXPECT_EQ(HashTokenFeature("table"), 13393877952257101349ULL);
  EXPECT_EQ(HashTokenFeature("column"), 1316202627445698569ULL);
  EXPECT_EQ(HashTokenFeature("year"), 6985392534289057094ULL);
  EXPECT_EQ(HashTokenFeature("2019"), 10370843403781473091ULL);
  EXPECT_EQ(HashTokenFeature("header_row"), 11507890926133322981ULL);
  // Bucketing at a typical feature dim, as the extractors consume it.
  EXPECT_EQ(HashTokenFeature("table") % 512, 37u);
  EXPECT_EQ(HashTokenFeature("column") % 512, 9u);
}

// The legacy basis is distinct from the content-hash basis used for
// serving-cache keys; the two must never be merged "for cleanliness".
TEST(HashTest, LegacyBasisDiffersFromStandardFnvBasis) {
  EXPECT_NE(kFnvLegacyTokenBasis, kFnv64OffsetBasis);
  EXPECT_NE(HashTokenFeature("table"),
            HashBytes("table", 5, kFnv64OffsetBasis));
}

}  // namespace
}  // namespace explainti::util
