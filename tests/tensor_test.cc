#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace explainti::tensor {
namespace {

TEST(TensorTest, ZerosHasShapeAndZeroData) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t.at(i), 2.5f);
}

TEST(TensorTest, FromVectorRoundTrips) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1, 2, 3, 4}));
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(7.0f).item(), 7.0f);
}

TEST(TensorTest, NegativeDimIndexing) {
  Tensor t = Tensor::Zeros({2, 5});
  EXPECT_EQ(t.dim(-1), 5);
  EXPECT_EQ(t.dim(-2), 2);
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  util::Rng rng1(42);
  util::Rng rng2(42);
  Tensor a = Tensor::Randn({8}, rng1, 1.0f);
  Tensor b = Tensor::Randn({8}, rng2, 1.0f);
  EXPECT_EQ(a.ToVector(), b.ToVector());
}

TEST(TensorTest, DetachSharesValuesButNotGraph) {
  Tensor a = Tensor::Full({2}, 3.0f);
  a.set_requires_grad(true);
  Tensor b = Scale(a, 2.0f);
  Tensor d = b.Detach();
  EXPECT_EQ(d.ToVector(), b.ToVector());
  EXPECT_FALSE(d.requires_grad());
  // Backward through b still works; d is outside the graph.
  Sum(b).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
}

TEST(TensorTest, AddInPlaceAccumulates) {
  Tensor a = Tensor::Full({3}, 1.0f);
  Tensor b = Tensor::Full({3}, 2.0f);
  a.AddInPlace(b, 0.5f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(a.at(i), 2.0f);
}

TEST(TensorTest, ZeroGradClearsGradient) {
  Tensor a = Tensor::Full({2}, 1.0f);
  a.set_requires_grad(true);
  Sum(a).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(TensorTest, BackwardAccumulatesAcrossUses) {
  // y = a + a: dy/da = 2.
  Tensor a = Tensor::Full({2}, 1.0f);
  a.set_requires_grad(true);
  Tensor y = Sum(Add(a, a));
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 2.0f);
}

TEST(TensorTest, BackwardThroughDiamondGraph) {
  // y = sum(a*a + a): dy/da_i = 2a_i + 1.
  Tensor a = Tensor::FromVector({2}, {2.0f, 3.0f});
  a.set_requires_grad(true);
  Tensor y = Sum(Add(Mul(a, a), a));
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 5.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 7.0f);
}

TEST(TensorOpsTest, AddBroadcastsBias) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2}, {10, 20});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.ToVector(), (std::vector<float>{11, 22, 13, 24}));
}

TEST(TensorOpsTest, MatMulKnownProduct) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.ToVector(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(TensorOpsTest, MatMulVectorTimesMatrix) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{9, 12, 15}));
}

TEST(TensorOpsTest, MatMulMatrixTimesVector) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2}, {5, 6});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{17, 39}));
}

TEST(TensorOpsTest, DotProduct) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 6});
  EXPECT_FLOAT_EQ(Dot(a, b).item(), 32.0f);
}

TEST(TensorOpsTest, TransposeSwapsDims) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  util::Rng rng(3);
  Tensor x = Tensor::Randn({4, 7}, rng, 2.0f);
  Tensor y = Softmax(x);
  for (int64_t r = 0; r < 4; ++r) {
    float total = 0.0f;
    for (int64_t c = 0; c < 7; ++c) total += y.at(r * 7 + c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(TensorOpsTest, SoftmaxIsShiftInvariant) {
  Tensor x = Tensor::FromVector({3}, {1, 2, 3});
  Tensor y = Softmax(x);
  Tensor x_shift = Tensor::FromVector({3}, {101, 102, 103});
  Tensor y_shift = Softmax(x_shift);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(y.at(i), y_shift.at(i), 1e-5f);
  }
}

TEST(TensorOpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor x = Tensor::FromVector({4}, {0.5f, -1.0f, 2.0f, 0.0f});
  Tensor ls = LogSoftmax(x);
  Tensor s = Softmax(x);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(ls.at(i), std::log(s.at(i)), 1e-5f);
  }
}

TEST(TensorOpsTest, LayerNormNormalisesRows) {
  Tensor x = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor gamma = Tensor::Full({4}, 1.0f);
  Tensor beta = Tensor::Zeros({4});
  Tensor y = LayerNorm(x, gamma, beta);
  for (int64_t r = 0; r < 2; ++r) {
    float mean = 0.0f;
    for (int64_t c = 0; c < 4; ++c) mean += y.at(r * 4 + c);
    mean /= 4.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    float var = 0.0f;
    for (int64_t c = 0; c < 4; ++c) {
      var += (y.at(r * 4 + c) - mean) * (y.at(r * 4 + c) - mean);
    }
    EXPECT_NEAR(var / 4.0f, 1.0f, 1e-3f);
  }
}

TEST(TensorOpsTest, EmbeddingLookupGathersRows) {
  Tensor table = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor out = EmbeddingLookup(table, {2, 0, 2});
  EXPECT_EQ(out.shape(), (Shape{3, 2}));
  EXPECT_EQ(out.ToVector(), (std::vector<float>{5, 6, 1, 2, 5, 6}));
}

TEST(TensorOpsTest, EmbeddingBackwardScatterAdds) {
  Tensor table = Tensor::Zeros({3, 2});
  table.set_requires_grad(true);
  Tensor out = EmbeddingLookup(table, {1, 1});
  Sum(out).Backward();
  // Row 1 used twice: gradient 2 per entry; other rows 0.
  EXPECT_FLOAT_EQ(table.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(table.grad()[2], 2.0f);
  EXPECT_FLOAT_EQ(table.grad()[3], 2.0f);
  EXPECT_FLOAT_EQ(table.grad()[4], 0.0f);
}

TEST(TensorOpsTest, SliceAndConcatRoundTrip) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor top = SliceRows(a, 0, 1);
  Tensor rest = SliceRows(a, 1, 3);
  Tensor back = ConcatRows({top, rest});
  EXPECT_EQ(back.ToVector(), a.ToVector());
}

TEST(TensorOpsTest, SliceColsAndConcatColsRoundTrip) {
  Tensor a = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor left = SliceCols(a, 0, 2);
  Tensor right = SliceCols(a, 2, 4);
  EXPECT_EQ(left.ToVector(), (std::vector<float>{1, 2, 5, 6}));
  Tensor back = ConcatCols({left, right});
  EXPECT_EQ(back.ToVector(), a.ToVector());
}

TEST(TensorOpsTest, RowExtractsVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Row(a, 1);
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_EQ(r.ToVector(), (std::vector<float>{4, 5, 6}));
}

TEST(TensorOpsTest, MeanRowsAverages) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor m = MeanRows(a);
  EXPECT_EQ(m.ToVector(), (std::vector<float>{2, 3}));
}

TEST(TensorOpsTest, StackBuildsMatrix) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor s = Stack({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{1, 2, 3, 4}));
}

TEST(TensorOpsTest, ReluClampsNegatives) {
  Tensor a = Tensor::FromVector({3}, {-1, 0, 2});
  EXPECT_EQ(Relu(a).ToVector(), (std::vector<float>{0, 0, 2}));
}

TEST(TensorOpsTest, GeluMatchesReference) {
  // Known values of tanh-approximated GELU.
  Tensor a = Tensor::FromVector({2}, {0.0f, 1.0f});
  Tensor y = Gelu(a);
  EXPECT_NEAR(y.at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(y.at(1), 0.8412f, 1e-3f);
}

TEST(TensorOpsTest, SigmoidAtZeroIsHalf) {
  EXPECT_NEAR(SigmoidOp(Tensor::Zeros({1})).at(0), 0.5f, 1e-6f);
}

TEST(TensorOpsTest, L2NormalizeYieldsUnitVector) {
  Tensor a = Tensor::FromVector({2}, {3, 4});
  Tensor n = L2Normalize(a);
  EXPECT_NEAR(n.at(0), 0.6f, 1e-5f);
  EXPECT_NEAR(n.at(1), 0.8f, 1e-5f);
}

TEST(TensorOpsTest, CrossEntropyMatchesManual) {
  Tensor logits = Tensor::FromVector({3}, {1.0f, 2.0f, 0.5f});
  const std::vector<float> probs = SoftmaxValues(logits.ToVector());
  EXPECT_NEAR(CrossEntropyLoss(logits, 1).item(), -std::log(probs[1]), 1e-5f);
}

TEST(TensorOpsTest, BceWithLogitsMatchesManual) {
  Tensor logits = Tensor::FromVector({2}, {0.0f, 2.0f});
  const std::vector<float> target = {1.0f, 0.0f};
  const float expected =
      (-std::log(0.5f) - std::log(1.0f - 1.0f / (1.0f + std::exp(-2.0f)))) /
      2.0f;
  EXPECT_NEAR(BceWithLogitsLoss(logits, target).item(), expected, 1e-5f);
}

TEST(TensorOpsTest, NllFromProbsMatchesManual) {
  Tensor probs = Tensor::FromVector({2}, {0.25f, 0.75f});
  EXPECT_NEAR(NllFromProbs(probs, 1).item(), -std::log(0.75f), 1e-5f);
}

TEST(TensorOpsTest, DropoutEvalIsIdentity) {
  util::Rng rng(5);
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor d = Dropout(a, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(d.ToVector(), a.ToVector());
}

TEST(TensorOpsTest, DropoutPreservesExpectation) {
  util::Rng rng(6);
  Tensor a = Tensor::Full({20000}, 1.0f);
  Tensor d = Dropout(a, 0.3f, rng, /*training=*/true);
  double total = 0.0;
  for (int64_t i = 0; i < d.size(); ++i) total += d.at(i);
  EXPECT_NEAR(total / static_cast<double>(d.size()), 1.0, 0.03);
}

TEST(TensorOpsTest, KlDivergenceZeroForIdenticalDistributions) {
  const std::vector<float> p = {0.2f, 0.3f, 0.5f};
  EXPECT_NEAR(KlDivergence(p, p), 0.0f, 1e-6f);
}

TEST(TensorOpsTest, KlDivergenceNonNegative) {
  const std::vector<float> p = {0.9f, 0.05f, 0.05f};
  const std::vector<float> q = {0.1f, 0.6f, 0.3f};
  EXPECT_GT(KlDivergence(p, q), 0.0f);
}

TEST(TensorOpsTest, CosineSimilarityBounds) {
  const std::vector<float> a = {1, 0};
  const std::vector<float> b = {0, 1};
  const std::vector<float> c = {2, 0};
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0f, 1e-6f);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0f, 1e-6f);
}

}  // namespace
}  // namespace explainti::tensor
