// Precision-tiered serving: int8 kernels, quantized plan builds, the
// accuracy-driven mixed mode, fail-closed fallback, and the weight-update
// lifecycle (quantize once, re-quantize in place).

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/explain_ti_model.h"
#include "core/inference_plan.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"
#include "golden_evidence.h"
#include "nn/lowering.h"
#include "tensor/plan_kernels.h"
#include "tensor/quant.h"
#include "tensor/workspace.h"
#include "util/alloc_counter.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace explainti::core {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

class GlobalPoolGuard {
 public:
  GlobalPoolGuard() = default;
  ~GlobalPoolGuard() {
    util::SetGlobalThreadCount(util::ConfiguredThreadCount());
  }
};

class ArmedFault {
 public:
  explicit ArmedFault(const std::string& site) {
    util::fault::FaultSpec spec;
    spec.kind = util::fault::FaultKind::kError;
    spec.code = util::StatusCode::kInternal;
    spec.message = "chaos: " + site;
    util::fault::FaultRegistry::Instance().Arm(site, spec);
  }
  ~ArmedFault() { util::fault::FaultRegistry::Instance().DisarmAll(); }
};

data::TableCorpus TinyCorpus() { return explainti::testing::GoldenCorpus(); }
ExplainTiConfig TinyConfig() { return explainti::testing::GoldenConfig(); }

void ExpectBitEqual(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << what;
  }
}

// -- Kernel level: quantization scheme and the int8 GEMM -------------------

// Symmetric per-column weight quantization reconstructs within one scale
// step per element, and the cached column sums match a direct count.
TEST(QuantizedKernelTest, WeightQuantizationRoundTripsWithinOneStep) {
  util::Rng rng(7);
  const int64_t rows = 37, cols = 19;
  std::vector<float> w(static_cast<size_t>(rows * cols));
  for (float& v : w) v = rng.Uniform(-2.5f, 2.5f);

  const tensor::QuantizedMatrix q =
      tensor::QuantizeWeightMatrix(w.data(), rows, cols);
  ASSERT_EQ(q.rows, rows);
  ASSERT_EQ(q.cols, cols);
  ASSERT_EQ(q.params.scales.size(), static_cast<size_t>(cols));
  ASSERT_EQ(q.col_sums.size(), static_cast<size_t>(cols));

  for (int64_t j = 0; j < cols; ++j) {
    EXPECT_EQ(q.params.zero_points[static_cast<size_t>(j)], 0)
        << "weights are symmetric";
    const float scale = q.params.scales[static_cast<size_t>(j)];
    int32_t sum = 0;
    for (int64_t i = 0; i < rows; ++i) {
      const int8_t qv = q.data[static_cast<size_t>(i * cols + j)];
      sum += qv;
      const float back = static_cast<float>(qv) * scale;
      EXPECT_NEAR(back, w[static_cast<size_t>(i * cols + j)], scale * 0.5f + 1e-6f);
      EXPECT_GE(qv, -127);  // Symmetric clamp: -128 never appears.
    }
    EXPECT_EQ(sum, q.col_sums[static_cast<size_t>(j)]);
  }
}

// dequant(int8 GEMM) tracks the fp32 GEMM within the quantization error
// bound on random matrices — the kernel's dequant epilogue (zero-point
// correction via column sums) is algebraically exact given the int32
// accumulation, so only representation error remains.
TEST(QuantizedKernelTest, Int8GemmTracksFp32WithinQuantizationError) {
  util::Rng rng(11);
  const int64_t m = 13, k = 64, n = 31;
  std::vector<float> a(static_cast<size_t>(m * k)), w(static_cast<size_t>(k * n));
  for (float& v : a) v = rng.Uniform(-3.0f, 3.0f);
  for (float& v : w) v = rng.Uniform(-0.8f, 0.8f);

  std::vector<float> want(static_cast<size_t>(m * n), 0.0f);
  tensor::ServingGemm(a.data(), k, w.data(), n, /*trans_b=*/false,
                      want.data(), n, m, k, n);

  const tensor::QuantizedMatrix q =
      tensor::QuantizeWeightMatrix(w.data(), k, n);
  std::vector<int8_t> aq(static_cast<size_t>(m * k));
  std::vector<float> a_scales(static_cast<size_t>(m));
  std::vector<int32_t> a_zps(static_cast<size_t>(m));
  tensor::QuantizeRowsInt8(a.data(), k, m, k, aq.data(), a_scales.data(),
                           a_zps.data());
  std::vector<float> got(static_cast<size_t>(m * n), 0.0f);
  tensor::ServingGemmInt8(aq.data(), a_scales.data(), a_zps.data(),
                          q.data.data(), q.params.scales.data(),
                          q.col_sums.data(), got.data(), n, m, k, n);

  double worst = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst, static_cast<double>(std::fabs(want[i] - got[i])));
  }
  // Loose analytic bound: per-product error ~ (a_step + w_step) * |.|,
  // accumulated over k. Random ±3 x ±0.8 at k=64 lands well under 0.5.
  EXPECT_LT(worst, 0.5) << "int8 GEMM diverged beyond quantization error";

  // Thread-count invariance: the chunked path must equal the single-
  // thread result exactly (int32 accumulation has no rounding order).
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(4);
  std::vector<float> chunked(static_cast<size_t>(m * n), 0.0f);
  tensor::ServingGemmInt8(aq.data(), a_scales.data(), a_zps.data(),
                          q.data.data(), q.params.scales.data(),
                          q.col_sums.data(), chunked.data(), n, m, k, n);
  EXPECT_EQ(std::memcmp(chunked.data(), got.data(),
                        chunked.size() * sizeof(float)),
            0)
      << "int8 GEMM results depend on thread count";
}

// Re-quantization rewrites the same storage: data/scale/col_sum pointers
// survive, contents track the new weights — the borrowed-pointer contract
// int8 plan instructions rely on.
TEST(QuantizedKernelTest, RequantizeIsInPlaceAndPointerStable) {
  util::Rng rng(3);
  const int64_t rows = 16, cols = 8;
  std::vector<float> w1(static_cast<size_t>(rows * cols)),
      w2(static_cast<size_t>(rows * cols));
  for (float& v : w1) v = rng.Uniform(-1.0f, 1.0f);
  for (float& v : w2) v = rng.Uniform(-1.0f, 1.0f);

  tensor::QuantizedMatrix q = tensor::QuantizeWeightMatrix(w1.data(), rows, cols);
  const int8_t* data_ptr = q.data.data();
  const float* scale_ptr = q.params.scales.data();
  const int32_t* sums_ptr = q.col_sums.data();

  tensor::RequantizeWeightMatrix(w2.data(), rows, cols, &q);
  EXPECT_EQ(q.data.data(), data_ptr);
  EXPECT_EQ(q.params.scales.data(), scale_ptr);
  EXPECT_EQ(q.col_sums.data(), sums_ptr);

  const tensor::QuantizedMatrix fresh =
      tensor::QuantizeWeightMatrix(w2.data(), rows, cols);
  EXPECT_EQ(q.data, fresh.data);
  EXPECT_EQ(q.params.scales, fresh.params.scales);
  EXPECT_EQ(q.col_sums, fresh.col_sums);
}

// -- Session level: the int8 tier ------------------------------------------

// An int8 session arms the full tier, reports it, and its base-head
// predictions agree with the fp32 reference on most golden samples.
TEST(QuantizedSessionTest, Int8PolicyArmsFullTierAndStaysAccurate) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  auto fp32_model = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "on");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  auto int8_model = [&] {
    ScopedEnv plan_env("EXPLAINTI_PLAN", "on");
    ScopedEnv prec_env("EXPLAINTI_PRECISION", "int8");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  const InferenceSession& int8 = int8_model->session();
  ASSERT_TRUE(int8.plans_enabled());
  ASSERT_TRUE(int8.precision_status().ok())
      << int8.precision_status().ToString();
  EXPECT_STREQ(int8.served_precision(), "int8");
  EXPECT_EQ(int8.precision_mode(), InferenceSession::PrecisionMode::kInt8);

  const InferenceSession::PrecisionStats stats = int8.precision_stats();
  EXPECT_GT(stats.int8_layers, 0);
  EXPECT_EQ(stats.fp32_fallback_layers, 0) << "int8 policy has no fallback";
  EXPECT_TRUE(stats.head_int8);
  ASSERT_GT(stats.weight_bytes_int8, 0);
  // ~4x weight-memory reduction. The per-column dequant params (fp32
  // scale + int32 col_sum = 8 bytes) amortise over the column's rows, so
  // at this repo's tiny d_model=64 the exact ratio is 4/(1 + 8/64) ≈ 3.5
  // for square weights and ~3.4 over the whole mix; production-size
  // columns (d >= 256) sit at 3.9+. Gate the tiny model at 3.0.
  EXPECT_GE(static_cast<double>(stats.weight_bytes_fp32) /
                static_cast<double>(stats.weight_bytes_int8),
            3.0);

  // Every plan carries int8 GEMMs, and the plan's quant scratch is wired.
  const std::vector<int> ids = explainti::testing::GoldenSampleIds(
      int8.task_data(TaskKind::kType));
  const InferencePlan* plan = int8.PlanFor(TaskKind::kType, ids.front());
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->int8_gemms, 0);
  EXPECT_GE(plan->qa_off, 0);

  // Prediction agreement with the fp32 reference on the golden samples.
  int agree = 0;
  for (int id : ids) {
    agree += int8.Predict(TaskKind::kType, id) ==
             fp32_model->session().Predict(TaskKind::kType, id);
  }
  EXPECT_GE(agree, static_cast<int>(ids.size()) - 1)
      << "int8 predictions diverged from fp32 on " << ids.size() - agree
      << " of " << ids.size() << " golden samples";
}

// EXPLAINTI_PRECISION=fp32 must be a true no-op: bit-identical outputs
// and zero quantized state, indistinguishable from an unset environment.
TEST(QuantizedSessionTest, Fp32PolicyIsBitIdenticalToDefault) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  auto default_model = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "on");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  auto fp32_model = [&] {
    ScopedEnv plan_env("EXPLAINTI_PLAN", "on");
    ScopedEnv prec_env("EXPLAINTI_PRECISION", "fp32");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  const InferenceSession& session = fp32_model->session();
  EXPECT_TRUE(session.precision_status().ok());
  EXPECT_STREQ(session.served_precision(), "fp32");
  EXPECT_EQ(session.precision_stats().weight_bytes_int8, 0);
  for (int id : explainti::testing::GoldenSampleIds(
           session.task_data(TaskKind::kType))) {
    ExpectBitEqual(
        session.PredictProbabilities(TaskKind::kType, id),
        default_model->session().PredictProbabilities(TaskKind::kType, id),
        "EXPLAINTI_PRECISION=fp32 changed the reference output");
  }
}

// A quantizer fault (plan.quantize chaos site) fails closed: the session
// keeps serving — from the all-fp32 plans, bit-identically — and reports
// a typed status, never an error or a half-quantized mix.
TEST(QuantizedSessionTest, QuantizeFaultFailsClosedToFp32Plans) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  auto reference = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "on");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  auto faulted = [&] {
    ScopedEnv plan_env("EXPLAINTI_PLAN", "on");
    ScopedEnv prec_env("EXPLAINTI_PRECISION", "int8");
    ArmedFault fault("plan.quantize");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  const InferenceSession& session = faulted->session();
  ASSERT_TRUE(session.plans_enabled())
      << "fp32 plans must survive a quantized-tier failure";
  EXPECT_STREQ(session.served_precision(), "fp32");
  EXPECT_FALSE(session.precision_status().ok());
  EXPECT_EQ(session.precision_status().code(), util::StatusCode::kInternal);
  EXPECT_EQ(session.precision_mode(), InferenceSession::PrecisionMode::kInt8)
      << "the requested policy is still reported";

  for (int id : explainti::testing::GoldenSampleIds(
           session.task_data(TaskKind::kType))) {
    ExpectBitEqual(
        session.PredictProbabilities(TaskKind::kType, id),
        reference->session().PredictProbabilities(TaskKind::kType, id),
        "failed-closed session diverged from the fp32 reference");
  }
  EXPECT_EQ(session.plan_stats().graph_runs, 0)
      << "fail-closed must land on fp32 plans, not the graph walk";
}

// Verify mode cross-checks bit-identity against the graph walk, which the
// int8 tier deliberately breaks — so verify forces fp32 with a typed
// status instead of CHECK-failing on the first call.
TEST(QuantizedSessionTest, VerifyModeForcesFp32) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ScopedEnv plan_env("EXPLAINTI_PLAN", "verify");
  ScopedEnv prec_env("EXPLAINTI_PRECISION", "int8");
  ExplainTiModel model(TinyConfig(), corpus);
  const InferenceSession& session = model.session();
  ASSERT_TRUE(session.plans_enabled());
  EXPECT_STREQ(session.served_precision(), "fp32");
  EXPECT_FALSE(session.precision_status().ok());
  // Serving a few calls exercises the verify CHECKs — they must pass,
  // proving nothing quantized leaked into the served path.
  for (int id : explainti::testing::GoldenSampleIds(
           session.task_data(TaskKind::kType))) {
    EXPECT_FALSE(session.Predict(TaskKind::kType, id).empty());
  }
}

// Mixed mode calibrates per layer: accounting must be consistent, serving
// must work, and whatever mask calibration picked must keep golden-sample
// agreement at the configured threshold.
TEST(QuantizedSessionTest, MixedModeCalibratesPerLayerMask) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  auto fp32_model = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "on");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  auto mixed_model = [&] {
    ScopedEnv plan_env("EXPLAINTI_PLAN", "on");
    ScopedEnv prec_env("EXPLAINTI_PRECISION", "mixed");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  const InferenceSession& session = mixed_model->session();
  ASSERT_TRUE(session.plans_enabled());
  EXPECT_EQ(session.precision_mode(), InferenceSession::PrecisionMode::kMixed);

  const InferenceSession::PrecisionStats stats = session.precision_stats();
  if (session.precision_status().ok()) {
    // Calibration accepted a mask: layers split cleanly between tiers.
    EXPECT_STREQ(session.served_precision(), "mixed");
    EXPECT_GT(stats.int8_layers + (stats.head_int8 ? 1 : 0), 0);
    const auto& config = mixed_model->config();
    // The fp32 path still answers; agreement on the calibration metric
    // held by construction. Spot-check label agreement end to end.
    const std::vector<int> ids = explainti::testing::GoldenSampleIds(
        session.task_data(TaskKind::kType));
    int agree = 0;
    for (int id : ids) {
      agree += session.Predict(TaskKind::kType, id) ==
               fp32_model->session().Predict(TaskKind::kType, id);
    }
    EXPECT_GE(static_cast<double>(agree),
              config.precision_min_agreement *
                  static_cast<double>(ids.size()) -
                  1.0);
  } else {
    // Calibration rejected everything: fail-closed semantics apply.
    EXPECT_STREQ(session.served_precision(), "fp32");
    EXPECT_EQ(stats.int8_layers, 0);
  }
  // Either way the layer accounting is total.
  EXPECT_FALSE(session.Predict(TaskKind::kType, 0).empty());
}

// -- Weight-update lifecycle ------------------------------------------------

// ReloadWeights on an armed int8 session re-quantizes IN PLACE: the
// installed plan objects and their borrowed int8 pointers survive, and
// the refreshed session is bit-identical to a from-scratch int8 session
// over the same weights.
TEST(QuantizedSessionTest, ReloadWeightsRequantizesInPlace) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ScopedEnv plan_env("EXPLAINTI_PLAN", "on");
  ScopedEnv prec_env("EXPLAINTI_PRECISION", "int8");

  // Pure-plan logits (no structural head) so the comparison below is
  // between the compiled paths alone, independent of store state.
  ExplainTiConfig base_config = TinyConfig();
  base_config.use_structural = false;
  base_config.use_global = false;

  // Donor checkpoint with different weights (different seed).
  ExplainTiConfig donor_config = base_config;
  donor_config.seed = 99;
  ExplainTiModel donor(donor_config, corpus);
  const std::string path = ::testing::TempDir() + "/quantized_reload.bin";
  ASSERT_TRUE(donor.SaveWeights(path).ok());

  ExplainTiModel model(base_config, corpus);
  InferenceSession session(model);  // Session under test (own instance).
  ASSERT_STREQ(session.served_precision(), "int8");

  const std::vector<int> ids = explainti::testing::GoldenSampleIds(
      session.task_data(TaskKind::kType));
  const InferencePlan* plan_before = session.PlanFor(TaskKind::kType, ids[0]);
  ASSERT_NE(plan_before, nullptr);
  const int8_t* weights_before = nullptr;
  for (const PlanInstr& instr : plan_before->instrs) {
    if (instr.dtype == tensor::DType::kI8) {
      weights_before = instr.weight_q;
      break;
    }
  }
  ASSERT_NE(weights_before, nullptr);

  // LoadWeights mutates the model's fp32 storage in place; the session's
  // quantized tier is now stale until ReloadWeights.
  ASSERT_TRUE(model.LoadWeights(path).ok());
  session.ReloadWeights();

  const InferencePlan* plan_after = session.PlanFor(TaskKind::kType, ids[0]);
  ASSERT_EQ(plan_after, plan_before)
      << "int8 fast path must not rebuild plan objects";
  const int8_t* weights_after = nullptr;
  for (const PlanInstr& instr : plan_after->instrs) {
    if (instr.dtype == tensor::DType::kI8) {
      weights_after = instr.weight_q;
      break;
    }
  }
  EXPECT_EQ(weights_after, weights_before)
      << "re-quantization must reuse the same int8 storage";

  // The refreshed session serves the donor's weights exactly like a
  // session quantized from scratch on them.
  const InferenceSession& fresh = donor.session();
  ASSERT_STREQ(fresh.served_precision(), "int8");
  for (int id : ids) {
    ExpectBitEqual(session.PredictProbabilities(TaskKind::kType, id),
                   fresh.PredictProbabilities(TaskKind::kType, id),
                   "reloaded int8 session vs fresh quantization");
  }
}

// LoadWeights through the model re-arms the tier automatically (suspend →
// store warm-up on fp32 → re-quantize), so a hot-swap replica always
// serves freshly quantized weights.
TEST(QuantizedSessionTest, LoadWeightsRearmsTheTier) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ScopedEnv plan_env("EXPLAINTI_PLAN", "on");
  ScopedEnv prec_env("EXPLAINTI_PRECISION", "int8");

  ExplainTiConfig base_config = TinyConfig();
  base_config.use_structural = false;
  base_config.use_global = false;
  ExplainTiModel donor(base_config, corpus);
  const std::string path = ::testing::TempDir() + "/quantized_swap.bin";
  ASSERT_TRUE(donor.SaveWeights(path).ok());

  ExplainTiConfig config = base_config;
  config.seed = 4321;
  ExplainTiModel model(config, corpus);
  ASSERT_TRUE(model.LoadWeights(path).ok());
  const InferenceSession& session = model.session();
  EXPECT_STREQ(session.served_precision(), "int8");
  EXPECT_TRUE(session.precision_status().ok())
      << session.precision_status().ToString();
  for (int id : explainti::testing::GoldenSampleIds(
           session.task_data(TaskKind::kType))) {
    ExpectBitEqual(session.PredictProbabilities(TaskKind::kType, id),
                   donor.session().PredictProbabilities(TaskKind::kType, id),
                   "post-LoadWeights int8 serving vs donor");
  }
}

// -- Steady state: the int8 path allocates nothing --------------------------

// Mirrors the fp32 zero-alloc gate: a warmed int8 RunPlan — row
// quantization, int8 GEMMs, dequant epilogues — performs zero heap
// allocations and never misses the workspace buffer pool.
TEST(QuantizedSessionTest, SteadyStateInt8RunPlanIsZeroAlloc) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ScopedEnv plan_env("EXPLAINTI_PLAN", "on");
  ScopedEnv prec_env("EXPLAINTI_PRECISION", "int8");
  ExplainTiModel model(TinyConfig(), corpus);
  const InferenceSession& session = model.session();
  ASSERT_TRUE(session.plans_enabled());
  ASSERT_STREQ(session.served_precision(), "int8");

  const TaskData& task = session.task_data(TaskKind::kType);
  const int id =
      explainti::testing::GoldenSampleIds(task).front();
  const InferencePlan* plan = session.PlanFor(TaskKind::kType, id);
  ASSERT_NE(plan, nullptr);
  ASSERT_GT(plan->int8_gemms, 0);
  const TaskSample& sample = task.samples[static_cast<size_t>(id)];

  std::vector<float> encoder_out(
      static_cast<size_t>(plan->seq_len * plan->d_model));
  std::vector<float> logits(static_cast<size_t>(plan->num_labels));
  PlanRun run;
  run.token_ids = sample.seq.ids.data();
  run.segment_ids = plan->has_segments ? sample.seq.segments.data() : nullptr;
  run.encoder_out = encoder_out.data();
  run.encoder_out_rows = plan->seq_len;
  run.logits = plan->logits_off >= 0 ? logits.data() : nullptr;

  RunPlan(*plan, run);  // Warm-up: seeds the arena bucket.
  RunPlan(*plan, run);

  const tensor::WorkspaceStats ws_before = tensor::ThisThreadWorkspaceStats();
  const util::AllocCounts heap_before = util::ThisThreadAllocCounts();
  for (int i = 0; i < 16; ++i) RunPlan(*plan, run);
  const util::AllocCounts heap_after = util::ThisThreadAllocCounts();
  const tensor::WorkspaceStats ws_after = tensor::ThisThreadWorkspaceStats();

  EXPECT_EQ(heap_after.allocations - heap_before.allocations, 0u)
      << "warmed-up int8 RunPlan allocated on the heap";
  EXPECT_EQ(ws_after.buffer_misses, ws_before.buffer_misses)
      << "warmed-up int8 RunPlan missed the workspace buffer pool";
}

// -- Golden evidence under the quantized tier -------------------------------

// Explanations from an int8 session must stay close to the fp32 golden
// evidence: the top-window token sets overlap strongly even where the
// relevance ordering wobbles within quantization error.
TEST(QuantizedSessionTest, GoldenEvidenceAgreementUnderInt8) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  auto fp32_model = [&] {
    ScopedEnv env("EXPLAINTI_PLAN", "on");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  auto int8_model = [&] {
    ScopedEnv plan_env("EXPLAINTI_PLAN", "on");
    ScopedEnv prec_env("EXPLAINTI_PRECISION", "int8");
    return std::make_unique<ExplainTiModel>(TinyConfig(), corpus);
  }();
  fp32_model->RefreshStores();
  int8_model->RefreshStores();
  ASSERT_STREQ(int8_model->session().served_precision(), "int8");

  const auto want = explainti::testing::GoldenEvidence(fp32_model->session(),
                                                       TaskKind::kType);
  const auto got = explainti::testing::GoldenEvidence(int8_model->session(),
                                                      TaskKind::kType);
  const double agreement = explainti::testing::MeanEvidenceAgreement(want, got);
  EXPECT_GE(agreement, 0.6)
      << "int8 explanations drifted too far from the fp32 golden evidence";
}

}  // namespace
}  // namespace explainti::core
