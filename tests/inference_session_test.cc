#include "core/inference_session.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/explain_ti_model.h"
#include "data/wiki_generator.h"
#include "tensor/workspace.h"
#include "util/alloc_counter.h"
#include "util/thread_pool.h"

namespace explainti::core {
namespace {

// Restores the global pool to the environment-configured size when a test
// that sweeps thread counts finishes, so test order doesn't matter.
class GlobalPoolGuard {
 public:
  GlobalPoolGuard() = default;
  ~GlobalPoolGuard() { util::SetGlobalThreadCount(util::ConfiguredThreadCount()); }
};

data::TableCorpus TinyCorpus() {
  data::WikiTableOptions options;
  options.num_tables = 28;
  return data::GenerateWikiTableCorpus(options);
}

ExplainTiConfig TinyConfig(const std::string& base_model) {
  ExplainTiConfig config;
  config.base_model = base_model;
  config.sample_size = 4;
  config.top_k = 3;
  return config;
}

// Bitwise float-vector equality: inference mode must not change numerics
// at all, so approximate comparisons would mask real drift.
void ExpectBitEqual(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << what;
  }
}

uint32_t Bits(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Full structural comparison of two explanations (tape vs no-grad): the
// prediction, LE windows, GE retrievals, and SE neighbours must all match
// bit for bit.
void ExpectExplanationsBitEqual(const Explanation& tape,
                                const Explanation& nograd) {
  EXPECT_EQ(tape.predicted_labels, nograd.predicted_labels);
  ExpectBitEqual(tape.probabilities, nograd.probabilities, "probabilities");

  ASSERT_EQ(tape.local.size(), nograd.local.size());
  for (size_t i = 0; i < tape.local.size(); ++i) {
    EXPECT_EQ(tape.local[i].window_start, nograd.local[i].window_start);
    EXPECT_EQ(tape.local[i].window_end, nograd.local[i].window_end);
    EXPECT_EQ(tape.local[i].window_start2, nograd.local[i].window_start2);
    EXPECT_EQ(tape.local[i].window_end2, nograd.local[i].window_end2);
    EXPECT_EQ(Bits(tape.local[i].relevance), Bits(nograd.local[i].relevance))
        << "LE relevance at " << i;
    EXPECT_EQ(tape.local[i].text, nograd.local[i].text);
  }

  ASSERT_EQ(tape.global.size(), nograd.global.size());
  for (size_t i = 0; i < tape.global.size(); ++i) {
    EXPECT_EQ(tape.global[i].train_sample_id, nograd.global[i].train_sample_id);
    EXPECT_EQ(Bits(tape.global[i].influence), Bits(nograd.global[i].influence))
        << "GE influence at " << i;
    EXPECT_EQ(tape.global[i].labels, nograd.global[i].labels);
  }

  ASSERT_EQ(tape.structural.size(), nograd.structural.size());
  for (size_t i = 0; i < tape.structural.size(); ++i) {
    EXPECT_EQ(tape.structural[i].neighbor_sample_id,
              nograd.structural[i].neighbor_sample_id);
    EXPECT_EQ(Bits(tape.structural[i].attention),
              Bits(nograd.structural[i].attention))
        << "SE attention at " << i;
    EXPECT_EQ(tape.structural[i].via, nograd.structural[i].via);
  }

  EXPECT_EQ(tape.ann_degraded, nograd.ann_degraded);
}

std::vector<int> SampleIds(const TaskData& task) {
  std::vector<int> ids;
  const int n = static_cast<int>(task.samples.size());
  for (int id = 0; id < n && static_cast<int>(ids.size()) < 6; id += 3) {
    ids.push_back(id);
  }
  return ids;
}

// -- Satellite 1: golden bit-equality, both base models, 1 and 4 threads. --

class GoldenBitEqualityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenBitEqualityTest, NoGradMatchesTapeBitForBit) {
  GlobalPoolGuard guard;
  const data::TableCorpus corpus = TinyCorpus();
  ExplainTiModel model(TinyConfig(GetParam()), corpus);
  // Untrained weights are as good as trained ones for an equality test;
  // RefreshStores populates the GE/SE stores so all three explanation
  // views are exercised.
  model.RefreshStores();
  const InferenceSession& session = model.session();

  for (int threads : {1, 4}) {
    util::SetGlobalThreadCount(threads);
    for (TaskKind kind : {TaskKind::kType, TaskKind::kRelation}) {
      if (!model.HasTask(kind)) continue;
      for (int id : SampleIds(model.task_data(kind))) {
        // Tape-building eval forward (the reference path).
        const std::vector<int> tape_labels = model.Predict(kind, id);
        const std::vector<float> tape_probs =
            model.PredictProbabilities(kind, id);
        const Explanation tape = model.Explain(kind, id);
        // No-grad forward through the frozen session.
        EXPECT_EQ(session.Predict(kind, id), tape_labels)
            << "threads=" << threads << " id=" << id;
        ExpectBitEqual(session.PredictProbabilities(kind, id), tape_probs,
                       "PredictProbabilities");
        ExpectExplanationsBitEqual(tape, session.Explain(kind, id));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BaseModels, GoldenBitEqualityTest,
                         ::testing::Values("bert", "roberta"));

// Weights written by the tape path and reloaded into a fresh model must
// serve identically through the fresh model's session.
TEST(InferenceSessionTest, SurvivesSaveLoadRoundTrip) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ExplainTiModel model(TinyConfig("bert"), corpus);
  model.RefreshStores();
  const std::string path = ::testing::TempDir() + "/session_weights.bin";
  ASSERT_TRUE(model.SaveWeights(path).ok());

  ExplainTiModel reloaded(TinyConfig("bert"), corpus);
  ASSERT_TRUE(reloaded.LoadWeights(path).ok());

  for (int id : SampleIds(model.task_data(TaskKind::kType))) {
    ExpectBitEqual(reloaded.session().PredictProbabilities(TaskKind::kType, id),
                   model.session().PredictProbabilities(TaskKind::kType, id),
                   "reloaded probabilities");
    ExpectExplanationsBitEqual(model.session().Explain(TaskKind::kType, id),
                               reloaded.session().Explain(TaskKind::kType, id));
  }
}

// Evaluate (now routed through the session) must agree with per-sample
// Predict — the same contract the old tape-path Evaluate satisfied.
TEST(InferenceSessionTest, EvaluateMatchesPerSamplePredict) {
  GlobalPoolGuard guard;
  const data::TableCorpus corpus = TinyCorpus();
  ExplainTiModel model(TinyConfig("bert"), corpus);
  model.RefreshStores();
  const eval::F1Scores serial = [&] {
    util::SetGlobalThreadCount(1);
    return model.Evaluate(TaskKind::kType, data::SplitPart::kTest);
  }();
  util::SetGlobalThreadCount(4);
  const eval::F1Scores parallel =
      model.Evaluate(TaskKind::kType, data::SplitPart::kTest);
  EXPECT_EQ(Bits(static_cast<float>(serial.weighted)),
            Bits(static_cast<float>(parallel.weighted)));
  EXPECT_EQ(Bits(static_cast<float>(serial.macro)),
            Bits(static_cast<float>(parallel.macro)));
}

// -- Satellite 2: a warmed-up Predict allocates nothing for tensors. -------

TEST(InferenceSessionTest, WarmPredictDoesNoTensorHeapAllocation) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ExplainTiModel model(TinyConfig("bert"), corpus);
  model.RefreshStores();
  const InferenceSession& session = model.session();
  const std::vector<int> ids = SampleIds(model.task_data(TaskKind::kType));

  auto run = [&] {
    for (int id : ids) session.Predict(TaskKind::kType, id);
  };
  run();  // Warm-up: populates the per-thread workspace arena.
  run();  // Second pass so every bucket has reached its high-water mark.

  // Steady state: every node block and data buffer is served from the
  // arena — acquires advance, misses (heap fallbacks) do not.
  const tensor::WorkspaceStats before = tensor::ThisThreadWorkspaceStats();
  const util::AllocCounts heap_before = util::ThisThreadAllocCounts();
  run();
  const util::AllocCounts heap_mid = util::ThisThreadAllocCounts();
  run();
  const tensor::WorkspaceStats after = tensor::ThisThreadWorkspaceStats();
  const util::AllocCounts heap_after = util::ThisThreadAllocCounts();

  EXPECT_GT(after.node_acquires, before.node_acquires);
  EXPECT_GT(after.buffer_acquires, before.buffer_acquires);
  EXPECT_EQ(after.node_misses, before.node_misses)
      << "tensor node fell back to the heap on a warmed-up Predict";
  EXPECT_EQ(after.buffer_misses, before.buffer_misses)
      << "tensor data buffer fell back to the heap on a warmed-up Predict";

  // Heap traffic that remains (result vectors, SE bookkeeping) is exactly
  // repeatable: two identical warmed passes allocate identical counts.
  EXPECT_EQ(heap_mid.allocations - heap_before.allocations,
            heap_after.allocations - heap_mid.allocations);
  EXPECT_EQ(heap_mid.bytes - heap_before.bytes,
            heap_after.bytes - heap_mid.bytes);
}

// -- Satellite 3: shared-session thread-safety (exercised under TSan via
//    the tier1 label; the tsan CI job runs this binary with 4 pool
//    threads). ---------------------------------------------------------------

TEST(InferenceSessionTsanTest, ConcurrentPredictExplainOnSharedWeights) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(1);
  const data::TableCorpus corpus = TinyCorpus();
  ExplainTiModel model(TinyConfig("bert"), corpus);
  model.RefreshStores();
  const InferenceSession& session = model.session();
  const std::vector<int> ids = SampleIds(model.task_data(TaskKind::kType));

  // Serial reference results first.
  std::vector<std::vector<int>> want_labels;
  std::vector<std::vector<float>> want_probs;
  for (int id : ids) {
    want_labels.push_back(session.Predict(TaskKind::kType, id));
    want_probs.push_back(session.PredictProbabilities(TaskKind::kType, id));
  }

  constexpr int kThreads = 4;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < ids.size(); ++i) {
          // Skew each thread's visit order so calls genuinely overlap on
          // different samples.
          const size_t j = (i + static_cast<size_t>(t)) % ids.size();
          if (session.Predict(TaskKind::kType, ids[j]) != want_labels[j]) {
            failures[static_cast<size_t>(t)] = "Predict mismatch";
            return;
          }
          const std::vector<float> probs =
              session.PredictProbabilities(TaskKind::kType, ids[j]);
          if (probs.size() != want_probs[j].size() ||
              std::memcmp(probs.data(), want_probs[j].data(),
                          probs.size() * sizeof(float)) != 0) {
            failures[static_cast<size_t>(t)] = "probability mismatch";
            return;
          }
          const Explanation z = session.Explain(TaskKind::kType, ids[j]);
          if (z.predicted_labels != want_labels[j]) {
            failures[static_cast<size_t>(t)] = "Explain mismatch";
            return;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<size_t>(t)], "") << "thread " << t;
  }
}

// GE/SE store rebuilds publish copy-on-write snapshots, so a rebuild may
// run *while* explanations are being served: each forward pass pins one
// snapshot and never observes a half-built index or evidence mixed
// across store generations.
TEST(InferenceSessionTsanTest, ExplainBatchConsistentDuringStoreRebuilds) {
  GlobalPoolGuard guard;
  util::SetGlobalThreadCount(2);
  const data::TableCorpus corpus = TinyCorpus();
  ExplainTiModel model(TinyConfig("bert"), corpus);
  model.RefreshStores();
  const InferenceSession& session = model.session();
  const std::vector<int> ids = SampleIds(model.task_data(TaskKind::kType));

  // Quiescent reference. The weights never change here, so every rebuild
  // republishes identical store content — any deviation below means a
  // forward pass read a torn snapshot (old code raced the in-place
  // rebuild exactly this way).
  const std::vector<Explanation> want =
      session.ExplainBatch(TaskKind::kType, ids);

  std::atomic<bool> stop{false};
  std::atomic<int> rebuilds{0};
  std::thread rebuilder([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      model.RefreshStores();
      rebuilds.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int round = 0; round < 6; ++round) {
    const std::vector<Explanation> got =
        session.ExplainBatch(TaskKind::kType, ids);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectExplanationsBitEqual(want[i], got[i]);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  rebuilder.join();
  EXPECT_GE(rebuilds.load(), 1);
}

}  // namespace
}  // namespace explainti::core
