// PII detection with verifiable explanations — the paper's motivating
// industry scenario (Section I): a data-management system must flag
// columns containing personally identifiable information before tables
// are shared, and a data steward verifies each flag. ExplainTI's
// explanations are what make that verification fast.
//
// This example trains ExplainTI on Web tables, flags every test column
// whose predicted type is a person subtype as PII, and prints a
// steward-ready review sheet: flag, confidence, and the explanation
// evidence from all three views.

#include <cstdio>
#include <string>

#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"
#include "util/string_util.h"

using explainti::core::ExplainTiConfig;
using explainti::core::ExplainTiModel;
using explainti::core::Explanation;
using explainti::core::InferenceSession;
using explainti::core::TaskKind;

namespace {

bool IsPiiLabel(const std::string& label_name) {
  // Person names are PII; teams, locations and works are not.
  return explainti::util::StartsWith(label_name, "person");
}

}  // namespace

int main() {
  explainti::data::WikiTableOptions data_options;
  data_options.num_tables = 160;
  explainti::data::TableCorpus corpus =
      explainti::data::GenerateWikiTableCorpus(data_options);

  ExplainTiConfig config;
  config.epochs = 10;
  ExplainTiModel model(config, corpus);
  model.Fit();

  // Review runs on the frozen serving path: no autograd tape, and safe
  // to fan out across steward threads.
  const InferenceSession& session = model.session();

  const auto& task = model.task_data(TaskKind::kType);
  int flagged = 0;
  int correct_flags = 0;
  int shown = 0;
  std::printf("=== PII review sheet (columns flagged as person data) ===\n");
  for (int id : task.test_ids) {
    const Explanation z = session.Explain(TaskKind::kType, id);
    bool pii = false;
    std::string predicted_names;
    for (int label : z.predicted_labels) {
      const std::string& name = task.label_names[static_cast<size_t>(label)];
      if (IsPiiLabel(name)) pii = true;
      if (!predicted_names.empty()) predicted_names += ", ";
      predicted_names += name;
    }
    if (!pii) continue;
    ++flagged;

    bool gold_pii = false;
    for (int label : task.samples[static_cast<size_t>(id)].labels) {
      if (IsPiiLabel(task.label_names[static_cast<size_t>(label)])) {
        gold_pii = true;
      }
    }
    if (gold_pii) ++correct_flags;

    if (shown < 5) {  // Print the first few flags in full.
      ++shown;
      std::printf("\n[FLAG %d] %s\n", flagged, task.SampleText(id).c_str());
      std::printf("  predicted: %s%s\n", predicted_names.c_str(),
                  gold_pii ? "" : "   (FALSE POSITIVE)");
      if (!z.local.empty()) {
        std::printf("  why (local)      : \"%s\"\n", z.local[0].text.c_str());
      }
      if (!z.global.empty()) {
        std::printf("  why (global)     : similar training column \"%s\"\n",
                    z.global[0].text.c_str());
      }
      if (!z.structural.empty()) {
        std::printf("  why (structural) : neighbour via %s \"%s\"\n",
                    explainti::graph::BridgeKindName(z.structural[0].via),
                    z.structural[0].text.c_str());
      }
    }
  }

  std::printf("\n=== summary ===\n");
  std::printf("columns flagged as PII : %d\n", flagged);
  if (flagged > 0) {
    std::printf("flag precision         : %.1f%%\n",
                100.0 * correct_flags / flagged);
  }
  return 0;
}
