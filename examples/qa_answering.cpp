// Explainable table-QA through the serving stack: pose structured
// queries ("what type is this column?", "which columns hold a given
// type?") against a trained model via InferenceServer's kQaAnswer
// method, and print the composed answer with its full justification —
// every step tagged with the prediction it came from, the tier that
// answered it (explanation-distilled surrogate vs the full teacher),
// and the LE/GE/SE evidence items backing it.

#include <cstdio>

#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"
#include "qa/query.h"
#include "serve/server.h"

using explainti::core::ExplainTiConfig;
using explainti::core::ExplainTiModel;
using explainti::core::TaskKind;
using namespace explainti::qa;
using namespace explainti::serve;

namespace {

void PrintAnswer(const QaAnswer& answer, const explainti::core::TaskData& task) {
  std::printf("answer: %d entr%s (%d surrogate step%s, %d escalated)\n",
              static_cast<int>(answer.entries.size()),
              answer.entries.size() == 1 ? "y" : "ies",
              answer.surrogate_steps, answer.surrogate_steps == 1 ? "" : "s",
              answer.escalated_steps);
  if (!answer.surrogate_status.ok()) {
    std::printf("  (surrogate tier down, teacher-only: %s)\n",
                answer.surrogate_status.ToString().c_str());
  }
  for (const QaAnswerEntry& entry : answer.entries) {
    std::printf("  column %d ->", entry.sample_id);
    for (int label : entry.labels) {
      std::printf(" %s", task.label_names[static_cast<size_t>(label)].c_str());
    }
    std::printf("  (confidence %.3f, step %d)\n", entry.confidence,
                entry.step);
  }
  std::printf("justification (%d steps, %d evidence items):\n",
              static_cast<int>(answer.justification.steps.size()),
              static_cast<int>(answer.justification.items.size()));
  for (const QaStep& step : answer.justification.steps) {
    std::printf("  step %d: %s on column %d via %s ->", step.step,
                explainti::core::TaskKindName(step.task), step.sample_id,
                QaTierName(step.tier));
    for (int label : step.predicted_labels) {
      std::printf(" %s", task.label_names[static_cast<size_t>(label)].c_str());
    }
    std::printf("  (confidence %.3f)%s\n", step.confidence,
                step.ann_degraded ? "  [ANN degraded]" : "");
    for (const QaEvidenceItem& item : answer.justification.items) {
      if (item.step != step.step) continue;
      std::printf("    [%s %.3f] %s\n", QaViewName(item.view), item.score,
                  item.text.c_str());
    }
  }
}

}  // namespace

int main() {
  explainti::data::WikiTableOptions data_options;
  data_options.num_tables = 120;
  explainti::data::TableCorpus corpus =
      explainti::data::GenerateWikiTableCorpus(data_options);

  ExplainTiConfig config;
  config.epochs = 10;
  ExplainTiModel model(config, corpus);
  model.Fit();

  // QA serving with the surrogate cascade armed: tables the distilled
  // first tier answers confidently never touch the transformer. Any
  // distillation or scoring failure fails closed to teacher-only
  // answers, so enabling the cascade never changes what is asserted.
  ServerOptions options;
  options.qa.enabled = true;
  options.qa.options.enable_surrogate = true;
  options.qa.options.confidence_threshold = 0.9f;
  InferenceServer server(model.session(), options);

  const auto& task = model.task_data(TaskKind::kType);

  // Point query: "what type is this column?"
  ServeRequest point;
  point.method = ServeMethod::kQaAnswer;
  point.qa.kind = QaQueryKind::kColumnType;
  point.qa.sample_ids = {0};
  ServeResponse response = server.ServeSync(point);
  if (!response.status.ok()) {
    std::printf("QA request failed: %s\n", response.status.ToString().c_str());
    return 1;
  }
  std::printf("== what type is column 0?\n");
  PrintAnswer(response.qa, task);

  // Find query: "which of these columns hold the type column 0 has?"
  ServeRequest find;
  find.method = ServeMethod::kQaAnswer;
  find.qa.kind = QaQueryKind::kFindColumnsOfType;
  find.qa.sample_ids = {0, 1, 2, 3, 4, 5, 6, 7};
  find.qa.label_id = response.qa.entries[0].labels[0];
  find.qa.top_k = 3;
  ServeResponse found = server.ServeSync(find);
  if (!found.status.ok()) {
    std::printf("QA request failed: %s\n", found.status.ToString().c_str());
    return 1;
  }
  std::printf("\n== which columns hold type \"%s\"? (top %d of %d)\n",
              task.label_names[static_cast<size_t>(find.qa.label_id)].c_str(),
              find.qa.top_k, static_cast<int>(find.qa.sample_ids.size()));
  PrintAnswer(found.qa, task);

  std::printf("\nserved %lld QA answers: %lld surrogate steps, "
              "%lld escalated\n",
              static_cast<long long>(
                  server.metrics().GetCounter("qa.answered")->Value()),
              static_cast<long long>(
                  server.metrics().GetCounter("qa.surrogate_answered")->Value()),
              static_cast<long long>(
                  server.metrics().GetCounter("qa.escalated")->Value()));
  return 0;
}
