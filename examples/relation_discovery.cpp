// Relation discovery on database-style exports: predict the semantic
// relation between column pairs so downstream tools (BI dashboards,
// schema matchers) can join and label data automatically — with the
// pairwise local explanations (the paper's Figure 1(d)) shown alongside
// each prediction so an engineer can sanity-check the inferred relations.

#include <cstdio>

#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"

using explainti::core::ExplainTiConfig;
using explainti::core::ExplainTiModel;
using explainti::core::Explanation;
using explainti::core::InferenceSession;
using explainti::core::TaskKind;

int main() {
  explainti::data::WikiTableOptions data_options;
  data_options.num_tables = 160;
  explainti::data::TableCorpus corpus =
      explainti::data::GenerateWikiTableCorpus(data_options);

  ExplainTiConfig config;
  config.epochs = 10;
  ExplainTiModel model(config, corpus);
  model.Fit();

  const InferenceSession& session = model.session();
  const auto& task = model.task_data(TaskKind::kRelation);
  const auto f1 =
      session.Evaluate(TaskKind::kRelation, explainti::data::SplitPart::kTest);
  std::printf("relation prediction test F1-weighted: %.3f\n\n", f1.weighted);

  int shown = 0;
  int correct = 0;
  int total = 0;
  for (int id : task.test_ids) {
    const Explanation z = session.Explain(TaskKind::kRelation, id);
    const int predicted = z.predicted_labels.front();
    const int gold = task.samples[static_cast<size_t>(id)].labels.front();
    ++total;
    if (predicted == gold) ++correct;
    if (shown >= 6) continue;
    ++shown;

    const explainti::data::RelationSample& sample =
        corpus.relation_samples[static_cast<size_t>(id)];
    const explainti::data::Table& table =
        corpus.tables[static_cast<size_t>(sample.table_index)];
    std::printf("table \"%s\": (%s, %s)\n", table.title.c_str(),
                table.columns[static_cast<size_t>(sample.left_column)]
                    .header.c_str(),
                table.columns[static_cast<size_t>(sample.right_column)]
                    .header.c_str());
    std::printf("  predicted relation : %s  (gold: %s)\n",
                task.label_names[static_cast<size_t>(predicted)].c_str(),
                task.label_names[static_cast<size_t>(gold)].c_str());
    if (!z.local.empty()) {
      std::printf("  top pairwise phrase: \"%s\" (RS %.3f)\n",
                  z.local[0].text.c_str(), z.local[0].relevance);
    }
    if (!z.structural.empty()) {
      std::printf("  similar column pair: \"%s\" (AS %.3f)\n",
                  z.structural[0].text.c_str(), z.structural[0].attention);
    }
    std::printf("\n");
  }
  std::printf("test accuracy: %d/%d\n", correct, total);
  return 0;
}
