// Quickstart: train ExplainTI on a synthetic Web-table corpus, evaluate
// both table-interpretation tasks, and print a multi-view explanation for
// one test column.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"
#include "serve/server.h"
#include "util/timer.h"

using explainti::core::ExplainTiConfig;
using explainti::core::ExplainTiModel;
using explainti::core::Explanation;
using explainti::core::InferenceSession;
using explainti::core::TaskKind;

int main() {
  // 1. Generate a corpus of annotated Web tables (WikiTable stand-in).
  explainti::data::WikiTableOptions data_options;
  data_options.num_tables = 160;
  explainti::data::TableCorpus corpus =
      explainti::data::GenerateWikiTableCorpus(data_options);
  const auto stats = explainti::data::ComputeStatistics(corpus);
  std::printf("corpus: %lld tables, %lld type samples, %lld relation samples\n",
              static_cast<long long>(stats.num_tables),
              static_cast<long long>(stats.num_type_samples),
              static_cast<long long>(stats.num_relation_samples));

  // 2. Configure and train ExplainTI (pre-train + multi-task fine-tune).
  ExplainTiConfig config;
  config.base_model = "bert";
  config.epochs = 10;
  // Crash-safe training: an epoch-level checkpoint (CRC32-protected) lets
  // an interrupted run resume here; delete the file to retrain from
  // scratch. A corrupted checkpoint is detected and ignored.
  config.checkpoint_path = "/tmp/explainti_quickstart.ckpt";
  ExplainTiModel model(config, corpus);

  explainti::util::WallTimer timer;
  const auto fit = model.Fit();
  std::printf("trained in %.1fs (best valid F1-weighted %.3f at epoch %d)%s\n",
              timer.ElapsedSeconds(), fit.best_valid_f1, fit.best_epoch,
              fit.resumed ? " [resumed from checkpoint]" : "");
  if (fit.skipped_steps > 0 || fit.rollbacks > 0) {
    std::printf("recovered from %lld non-finite steps (%d rollbacks)\n",
                static_cast<long long>(fit.skipped_steps), fit.rollbacks);
  }

  // 3. Evaluate on the held-out test split. Serving goes through the
  // model's frozen InferenceSession: same forward, no autograd tape,
  // arena-recycled scratch buffers, safe to share across threads.
  const InferenceSession& session = model.session();
  const auto type_f1 =
      session.Evaluate(TaskKind::kType, explainti::data::SplitPart::kTest);
  const auto rel_f1 =
      session.Evaluate(TaskKind::kRelation, explainti::data::SplitPart::kTest);
  std::printf("column type     : F1-micro %.3f  F1-macro %.3f  F1-w %.3f\n",
              type_f1.micro, type_f1.macro, type_f1.weighted);
  std::printf("column relation : F1-micro %.3f  F1-macro %.3f  F1-w %.3f\n",
              rel_f1.micro, rel_f1.macro, rel_f1.weighted);

  // 4. Explain one prediction with all three views.
  const auto& task = model.task_data(TaskKind::kType);
  const int sample_id = task.test_ids.front();
  const Explanation z = session.Explain(TaskKind::kType, sample_id);

  std::printf("\nsample: %s\n", task.SampleText(sample_id).c_str());
  std::printf("prediction:");
  for (int label : z.predicted_labels) {
    std::printf(" %s", task.label_names[static_cast<size_t>(label)].c_str());
  }
  std::printf("\n");
  if (!z.local.empty()) {
    std::printf("local  (RS %.3f): \"%s\"\n", z.local[0].relevance,
                z.local[0].text.c_str());
  }
  if (!z.global.empty()) {
    std::printf("global (IS %.3f): \"%s\"\n", z.global[0].influence,
                z.global[0].text.c_str());
  }
  if (!z.structural.empty()) {
    std::printf("structural (AS %.3f, via %s): \"%s\"\n",
                z.structural[0].attention,
                explainti::graph::BridgeKindName(z.structural[0].via),
                z.structural[0].text.c_str());
  }
  if (!z.degradation_note.empty()) {
    std::printf("note: %s\n", z.degradation_note.c_str());
  }

  // 5. Serve under load: the InferenceServer wraps the same session in a
  // bounded admission queue + dynamic micro-batcher + worker pool.
  // Requests carry monotonic deadlines; batching never changes numerics
  // (responses are bit-identical to the direct session calls above).
  explainti::serve::ServerOptions server_options;
  server_options.num_workers = 2;
  server_options.batcher.max_batch_size = 8;
  server_options.batcher.max_queue_wait_us = 1000;
  explainti::serve::InferenceServer server(session, server_options);

  explainti::serve::ServeRequest request;
  request.method = explainti::serve::ServeMethod::kPredict;
  request.task = TaskKind::kType;
  request.sample_id = sample_id;
  request.deadline_us = explainti::util::DeadlineAfterUs(100'000);  // 100ms.
  const explainti::serve::ServeResponse response = server.ServeSync(request);
  if (response.status.ok()) {
    std::printf("\nserved prediction (batch of %d, %lldus end-to-end):",
                response.batch_size,
                static_cast<long long>(response.total_us));
    for (int label : response.labels) {
      std::printf(" %s", task.label_names[static_cast<size_t>(label)].c_str());
    }
    std::printf("\n");
  } else {
    std::printf("\nrequest shed: %s\n", response.status.ToString().c_str());
  }
  server.Shutdown();  // Graceful drain; also implied by the destructor.
  std::printf("server metrics: %s\n", server.metrics().ToJson().c_str());
  return 0;
}
