// Explanation dashboard — a text rendering of the paper's Figure 6 case
// study and of the ExplainTI+ verification UI (Figure 4): for a handful
// of test columns, show the input, the prediction, and the three
// explanation views side by side, exactly the artefact a human verifier
// would consume.

#include <cstdio>

#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"

using explainti::core::ExplainTiConfig;
using explainti::core::ExplainTiModel;
using explainti::core::Explanation;
using explainti::core::InferenceSession;
using explainti::core::TaskKind;

namespace {

void RenderCase(const InferenceSession& session, int sample_id) {
  const auto& task = session.task_data(TaskKind::kType);
  const Explanation z = session.Explain(TaskKind::kType, sample_id);

  std::printf("┌─ input column ───────────────────────────────────────\n");
  std::printf("│ %s\n", task.SampleText(sample_id).c_str());
  std::printf("├─ prediction ─────────────────────────────────────────\n│");
  for (int label : z.predicted_labels) {
    std::printf(" %s", task.label_names[static_cast<size_t>(label)].c_str());
  }
  std::printf("\n│ gold:");
  for (int label : task.samples[static_cast<size_t>(sample_id)].labels) {
    std::printf(" %s", task.label_names[static_cast<size_t>(label)].c_str());
  }
  std::printf("\n├─ local explanations (relevant windows) ─────────────\n");
  for (size_t i = 0; i < z.local.size() && i < 3; ++i) {
    std::printf("│ RS=%.3f  \"%s\"\n", z.local[i].relevance,
                z.local[i].text.c_str());
  }
  std::printf("├─ global explanations (similar training samples) ────\n");
  for (size_t i = 0; i < z.global.size() && i < 2; ++i) {
    std::printf("│ IS=%.3f  \"%s\"\n", z.global[i].influence,
                z.global[i].text.c_str());
    std::printf("│           labels:");
    for (int label : z.global[i].labels) {
      std::printf(" %s",
                  task.label_names[static_cast<size_t>(label)].c_str());
    }
    std::printf("\n");
  }
  std::printf("├─ structural explanations (influential neighbours) ──\n");
  for (size_t i = 0; i < z.structural.size() && i < 2; ++i) {
    std::printf("│ AS=%.3f  via %-6s \"%s\"\n", z.structural[i].attention,
                explainti::graph::BridgeKindName(z.structural[i].via),
                z.structural[i].text.c_str());
  }
  std::printf("└──────────────────────────────────────────────────────\n\n");
}

}  // namespace

int main() {
  explainti::data::WikiTableOptions data_options;
  data_options.num_tables = 160;
  explainti::data::TableCorpus corpus =
      explainti::data::GenerateWikiTableCorpus(data_options);

  ExplainTiConfig config;
  config.epochs = 10;
  ExplainTiModel model(config, corpus);
  model.Fit();
  const InferenceSession& session = model.session();

  // Prefer a country column for the rendered case, mirroring Figure 6's
  // location.country / location.location example.
  const auto& task = model.task_data(TaskKind::kType);
  int rendered = 0;
  for (int id : task.test_ids) {
    bool is_country = false;
    for (int label : task.samples[static_cast<size_t>(id)].labels) {
      if (task.label_names[static_cast<size_t>(label)] == "location.country") {
        is_country = true;
      }
    }
    if (!is_country && rendered == 0) continue;
    RenderCase(session, id);
    if (++rendered == 3) break;
  }
  if (rendered == 0 && !task.test_ids.empty()) {
    RenderCase(session, task.test_ids.front());
  }
  return 0;
}
