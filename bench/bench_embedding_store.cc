// Benchmarks the sharded, snapshot-persistent embedding store and emits
// BENCH_store.json: full-build and incremental-rebuild latency (with the
// copy-on-write dirty-segment counts), search p50/p99, recall@10 against
// an exact FlatIndex over the whole corpus, save/load latency, and the
// hot-swap path (Load publishing over a live store while a pinned reader
// keeps answering from the old generation).
//
// Hard gates (the run aborts, it does not just report):
//   * a saved store reloaded from disk answers every probe with
//     bit-identical ids and similarity bits (the roundtrip_identical
//     field records the verdict check_bench.py re-checks);
//   * a pinned View never observes the generation swap underneath it;
//   * the steady-state serial search path performs zero heap
//     allocations per query.
//
// Corpus sizes: 10k always; 100k too unless EXPLAINTI_BENCH_SCALE=quick
// wants the short run — then the 100k row is skipped and the JSON says
// so via the "corpora" field (no silent caps).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ann/flat_index.h"
#include "ann/index.h"
#include "bench/bench_common.h"
#include "core/embedding_store.h"
#include "util/alloc_counter.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace explainti;

namespace {

constexpr int kDim = 16;
constexpr int kK = 10;
constexpr int kNumQueries = 64;
constexpr int kSearchReps = 200;
/// Recall floor also enforced by ci/check_bench.py; keep in sync.
constexpr double kRecallFloor = 0.80;

struct Corpus {
  std::vector<int> ids;
  std::vector<std::vector<float>> rows;
  std::vector<std::vector<float>> queries;
  /// Exact top-k ids per query over the whole corpus (ground truth).
  std::vector<std::vector<int64_t>> truth;
};

Corpus MakeCorpus(int n) {
  Corpus corpus;
  util::Rng rng(0xC0FFEE ^ static_cast<uint64_t>(n));
  corpus.rows.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    corpus.ids.push_back(i);
    auto& row = corpus.rows[static_cast<size_t>(i)];
    row.resize(kDim);
    for (float& x : row) x = static_cast<float>(rng.Normal());
  }
  for (int q = 0; q < kNumQueries; ++q) {
    std::vector<float> query(kDim);
    for (float& x : query) x = static_cast<float>(rng.Normal());
    corpus.queries.push_back(std::move(query));
  }
  // Exact ground truth from a flat index over the full corpus.
  ann::FlatIndex exact;
  for (int i = 0; i < n; ++i) exact.Add(i, corpus.rows[static_cast<size_t>(i)]);
  for (const auto& query : corpus.queries) {
    std::vector<int64_t> ids;
    for (const ann::SearchResult& hit : exact.Search(query, kK)) {
      ids.push_back(hit.id);
    }
    corpus.truth.push_back(std::move(ids));
  }
  return corpus;
}

core::EmbeddingStore::Options StoreOptions(int shards) {
  core::EmbeddingStore::Options options;
  options.num_segments = shards;
  options.hnsw.M = 8;
  options.hnsw.ef_construction = 48;
  options.hnsw.ef_search = 64;
  return options;
}

struct ProbeResult {
  std::vector<int64_t> ids;
  std::vector<uint32_t> sim_bits;
  bool operator==(const ProbeResult&) const = default;
};

ProbeResult Probe(const core::EmbeddingStore::View& view,
                  const std::vector<float>& query) {
  ProbeResult probe;
  for (const ann::SearchResult& hit : view.Search(query, kK)) {
    probe.ids.push_back(hit.id);
    uint32_t bits = 0;
    std::memcpy(&bits, &hit.similarity, sizeof(bits));
    probe.sim_bits.push_back(bits);
  }
  return probe;
}

double Percentile(std::vector<double>& sorted_values, double p) {
  std::sort(sorted_values.begin(), sorted_values.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted_values.size() - 1));
  return sorted_values[index];
}

struct Row {
  int corpus = 0;
  int shards = 0;
  double build_ms = 0.0;
  double incremental_rebuild_ms = 0.0;
  int64_t segments_built = 0;
  int64_t segments_reused = 0;
  double search_p50_us = 0.0;
  double search_p99_us = 0.0;
  double recall_at_10 = 0.0;
  double save_ms = 0.0;
  double load_ms = 0.0;
  double swap_ms = 0.0;
  bool roundtrip_identical = false;
  int64_t steady_state_allocations = -1;
};

Row RunConfig(const Corpus& corpus, int shards) {
  Row row;
  row.corpus = static_cast<int>(corpus.ids.size());
  row.shards = shards;

  core::EmbeddingStore store(StoreOptions(shards));
  {
    util::WallTimer timer;
    store.Rebuild(corpus.ids, corpus.rows);
    row.build_ms = timer.ElapsedSeconds() * 1e3;
  }
  CHECK(store.hnsw_ready());
  const core::EmbeddingStore::View view = store.view();

  // Search latency distribution over repeated query sweeps.
  {
    std::vector<double> micros;
    std::vector<ann::SearchResult> out;
    for (int rep = 0; rep < kSearchReps; ++rep) {
      const auto& query =
          corpus.queries[static_cast<size_t>(rep) % corpus.queries.size()];
      util::WallTimer timer;
      view.SearchInto(query, kK, -1, &out);
      micros.push_back(timer.ElapsedSeconds() * 1e6);
    }
    row.search_p50_us = Percentile(micros, 0.50);
    row.search_p99_us = Percentile(micros, 0.99);
  }

  // Recall@10 against the exact ground truth.
  {
    int64_t found = 0, wanted = 0;
    for (size_t q = 0; q < corpus.queries.size(); ++q) {
      const ProbeResult probe = Probe(view, corpus.queries[q]);
      for (int64_t id : corpus.truth[q]) {
        ++wanted;
        if (std::find(probe.ids.begin(), probe.ids.end(), id) !=
            probe.ids.end()) {
          ++found;
        }
      }
    }
    row.recall_at_10 =
        static_cast<double>(found) / static_cast<double>(wanted);
  }

  // Zero-allocation steady state (serial path: 1 thread).
  {
    util::SetGlobalThreadCount(1);
    std::vector<ann::SearchResult> out;
    for (int warm = 0; warm < 8; ++warm) {
      view.SearchInto(corpus.queries[static_cast<size_t>(warm)], kK, -1,
                      &out);
    }
    util::ScopedAllocCounter counter;
    for (int rep = 0; rep < 64; ++rep) {
      view.SearchInto(
          corpus.queries[static_cast<size_t>(rep) % corpus.queries.size()],
          kK, -1, &out);
    }
    row.steady_state_allocations = counter.Delta().allocations;
    CHECK_EQ(row.steady_state_allocations, 0)
        << "steady-state serial search must not allocate";
  }

  // Incremental copy-on-write rebuild: dirty one row, re-publish, and
  // verify a pinned reader keeps answering from the old generation for
  // the whole rebuild.
  {
    std::vector<std::vector<float>> dirty_rows = corpus.rows;
    dirty_rows[3][0] += 1.0f;
    const core::EmbeddingStore::View pinned = store.view();
    const uint64_t pinned_generation = pinned.generation();
    std::atomic<bool> stop{false};
    std::atomic<int64_t> reader_queries{0};
    std::thread reader([&] {
      std::vector<ann::SearchResult> out;
      while (!stop.load(std::memory_order_relaxed)) {
        pinned.SearchInto(corpus.queries[0], kK, -1, &out);
        CHECK_EQ(pinned.generation(), pinned_generation)
            << "pinned view observed a generation swap";
        reader_queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
    util::WallTimer timer;
    store.Rebuild(corpus.ids, dirty_rows);
    row.incremental_rebuild_ms = timer.ElapsedSeconds() * 1e3;
    stop.store(true);
    reader.join();
    CHECK_GT(reader_queries.load(), 0);
    row.segments_built = store.last_rebuild_stats().segments_built;
    row.segments_reused = store.last_rebuild_stats().segments_reused;
    // Restore the original contents for the persistence phase.
    store.Rebuild(corpus.ids, corpus.rows);
  }

  // Persistence roundtrip + hot swap under a live reader.
  {
    const std::string dir =
        "bench_store_" + std::to_string(row.corpus) + "_" +
        std::to_string(shards);
    std::system(("rm -rf " + dir).c_str());
    std::vector<ProbeResult> before;
    for (const auto& query : corpus.queries) {
      before.push_back(Probe(store.view(), query));
    }
    {
      util::WallTimer timer;
      CHECK(store.Save(dir).ok());
      row.save_ms = timer.ElapsedSeconds() * 1e3;
    }
    core::EmbeddingStore loaded(StoreOptions(shards));
    {
      util::WallTimer timer;
      CHECK(loaded.Load(dir).ok());
      row.load_ms = timer.ElapsedSeconds() * 1e3;
    }
    row.roundtrip_identical = true;
    for (size_t q = 0; q < corpus.queries.size(); ++q) {
      if (!(Probe(loaded.view(), corpus.queries[q]) == before[q])) {
        row.roundtrip_identical = false;
      }
    }
    CHECK(row.roundtrip_identical)
        << "reloaded store diverged from the store that saved it";

    // Hot swap: Load() over a store that is actively serving. The
    // pinned reader keeps its snapshot; swap_ms is the full re-point
    // latency (manifest + segment mmaps + publish).
    const core::EmbeddingStore::View pinned = loaded.view();
    const uint64_t pinned_generation = pinned.generation();
    {
      util::WallTimer timer;
      CHECK(loaded.Load(dir).ok());
      row.swap_ms = timer.ElapsedSeconds() * 1e3;
    }
    CHECK_EQ(pinned.generation(), pinned_generation);
    CHECK_GT(loaded.view().generation(), pinned_generation);
    std::system(("rm -rf " + dir).c_str());
  }
  return row;
}

void WriteJson(const std::vector<Row>& rows, const std::vector<int>& corpora) {
  std::ofstream json("BENCH_store.json");
  CHECK(json.good()) << "cannot open BENCH_store.json";
  json << "{\n  " << bench::HostMetaJson() << ",\n  \"dim\": " << kDim
       << ",\n  \"k\": " << kK << ",\n  \"recall_floor\": " << kRecallFloor
       << ",\n  \"corpora\": [";
  for (size_t i = 0; i < corpora.size(); ++i) {
    json << (i == 0 ? "" : ", ") << corpora[i];
  }
  json << "],\n  \"store\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"corpus\": " << r.corpus << ", \"shards\": " << r.shards
         << ", \"build_ms\": " << r.build_ms
         << ", \"incremental_rebuild_ms\": " << r.incremental_rebuild_ms
         << ", \"segments_built\": " << r.segments_built
         << ", \"segments_reused\": " << r.segments_reused
         << ", \"search_p50_us\": " << r.search_p50_us
         << ", \"search_p99_us\": " << r.search_p99_us
         << ", \"recall_at_10\": " << r.recall_at_10
         << ", \"save_ms\": " << r.save_ms << ", \"load_ms\": " << r.load_ms
         << ", \"swap_ms\": " << r.swap_ms << ", \"roundtrip_identical\": "
         << (r.roundtrip_identical ? "true" : "false")
         << ", \"steady_state_allocations\": " << r.steady_state_allocations
         << "}" << (i + 1 == rows.size() ? "" : ",") << "\n";
  }
  json << "  ]\n}\n";
}

}  // namespace

int main() {
  std::vector<int> corpora = {10000, 100000};
  if (bench::GetScale().name == "quick") {
    std::cerr << "[store] EXPLAINTI_BENCH_SCALE=quick: skipping the 100k "
                 "corpus (run with EXPLAINTI_BENCH_SCALE=full for it)\n";
    corpora = {10000};
  }

  std::vector<Row> rows;
  for (int n : corpora) {
    std::cerr << "[store] generating corpus n=" << n << " dim=" << kDim
              << "\n";
    const Corpus corpus = MakeCorpus(n);
    for (int shards : {1, 8}) {
      const Row row = RunConfig(corpus, shards);
      std::cerr << "[store] n=" << n << " shards=" << shards << " build="
                << row.build_ms << "ms incremental="
                << row.incremental_rebuild_ms << "ms (built "
                << row.segments_built << ", reused " << row.segments_reused
                << ") p50=" << row.search_p50_us << "us p99="
                << row.search_p99_us << "us recall@10=" << row.recall_at_10
                << " save=" << row.save_ms << "ms load=" << row.load_ms
                << "ms swap=" << row.swap_ms << "ms\n";
      CHECK_GE(row.recall_at_10, kRecallFloor)
          << "recall@10 below floor at n=" << n << " shards=" << shards;
      rows.push_back(row);
    }
  }
  WriteJson(rows, corpora);
  std::cerr << "[store] wrote BENCH_store.json\n";
  return 0;
}
