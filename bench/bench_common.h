#ifndef EXPLAINTI_BENCH_BENCH_COMMON_H_
#define EXPLAINTI_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/transformer_baseline.h"
#include "core/config.h"
#include "core/explain_ti_model.h"
#include "data/git_generator.h"
#include "data/wiki_generator.h"
#include "eval/sufficiency.h"

namespace explainti::bench {

/// Workload scale shared by every benchmark binary. Controlled by the
/// EXPLAINTI_BENCH_SCALE environment variable:
///   "quick" (default) — minutes-scale runs that reproduce the paper's
///                       qualitative shape on a laptop CPU;
///   "full"            — larger corpora and longer training for tighter
///                       numbers (several times slower).
struct Scale {
  std::string name;
  int wiki_tables;
  int git_tables;
  int epochs;
  int pretrain_epochs;
  /// Reduced scale for the 17-training sensitivity sweeps (Figure 7).
  int sweep_tables;
  int sweep_epochs;
};

/// Reads EXPLAINTI_BENCH_SCALE and returns the corresponding scale.
Scale GetScale();

/// Corpus factories at benchmark scale (fixed seeds: every binary sees
/// identical data).
data::TableCorpus MakeWikiCorpus(const Scale& scale);
data::TableCorpus MakeGitCorpus(const Scale& scale);

/// Config factories.
core::ExplainTiConfig MakeExplainTiConfig(const Scale& scale,
                                          const std::string& base_model);
baselines::TransformerBaselineConfig MakeBaselineConfig(
    const Scale& scale, const std::string& base_model);

/// "0.944"-style fixed-point formatting used throughout the tables.
std::string F3(double value);
std::string F1(double value);

/// One `"host": {...}` JSON member (no trailing comma) recording the
/// machine and build every BENCH_*.json was produced on: hardware-thread
/// count, CMake build type, the compiler flags it implies, and the
/// compiler itself. Checked-in bench numbers are only comparable with
/// this context — a 1-thread container and a 16-core bare-metal host
/// produce wildly different absolute rows (see ROADMAP caveat).
std::string HostMetaJson();

/// Builds a FRESH sufficiency dataset from per-sample explanation texts.
/// `explain(sample_id)` must return the explanation text for one sample
/// of `kind`.
eval::ExplanationDataset BuildExplanationDataset(
    const core::TaskData& task,
    const std::function<std::string(int)>& explain);

}  // namespace explainti::bench

#endif  // EXPLAINTI_BENCH_BENCH_COMMON_H_
