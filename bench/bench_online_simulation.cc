// Reproduces the paper's online simulation (Section IV-C): experts verify
// model predictions with and without explanations; the paper reports that
// explanations cut verification time by ~19%.
//
// We train ExplainTI, draw 30 random test samples per task (as in the
// paper), and run the verification-time model of eval/human_sim.h.

#include <iostream>

#include "bench/bench_common.h"
#include "eval/human_sim.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace explainti;

int main() {
  const bench::Scale scale = bench::GetScale();
  std::cerr << "[online] scale=" << scale.name << "\n";
  const data::TableCorpus wiki = bench::MakeWikiCorpus(scale);

  core::ExplainTiModel model(bench::MakeExplainTiConfig(scale, "bert"), wiki);
  model.Fit();
  std::cerr << "[online] model fitted\n";

  util::TablePrinter printer({"Task", "Without expl. (s)", "With expl. (s)",
                              "Reduction %"});
  util::Rng pick_rng(30);

  for (core::TaskKind kind :
       {core::TaskKind::kType, core::TaskKind::kRelation}) {
    const core::TaskData& task = model.task_data(kind);
    std::vector<int> ids = task.test_ids;
    pick_rng.Shuffle(ids);
    if (ids.size() > 30) ids.resize(30);  // Paper: 30 samples per model.

    std::vector<eval::JudgedExplanation> judged;
    for (int id : ids) {
      const core::Explanation z = model.Explain(kind, id);
      const core::TaskSample& sample =
          task.samples[static_cast<size_t>(id)];
      eval::JudgedExplanation j;
      if (!z.local.empty()) j.items.push_back(z.local[0].text);
      if (!z.global.empty()) j.items.push_back(z.global[0].text);
      if (!z.structural.empty()) j.items.push_back(z.structural[0].text);
      j.evidence = sample.evidence;
      j.sample_tokens = static_cast<int>(sample.seq.ids.size());
      bool correct = false;
      for (int p : z.predicted_labels) {
        for (int g : sample.labels) correct = correct || p == g;
      }
      j.prediction_correct = correct;
      judged.push_back(std::move(j));
    }

    const eval::VerificationOutcome outcome =
        eval::SimulateVerification(judged, /*seed=*/7 + static_cast<int>(kind));
    printer.AddRow({core::TaskKindName(kind),
                    bench::F1(outcome.mean_seconds_without),
                    bench::F1(outcome.mean_seconds_with),
                    bench::F1(outcome.reduction_pct)});
  }

  std::cout << "=== Online simulation: expert verification time with vs "
               "without explanations (scale: "
            << scale.name << ") ===\n";
  printer.Print(std::cout);
  std::cout << "paper reference: ~19% less verification time with "
               "ExplainTI's explanations.\n";
  return 0;
}
