// Online serving simulation (ROADMAP north star; paper Section V /
// Table 5 efficiency study): drives the dynamic micro-batching
// InferenceServer with an open-loop Poisson arrival process at several
// offered-load points and compares it against the sequential
// one-request-at-a-time baseline on the same frozen session. Emits
// BENCH_serving.json (throughput, p50/p99 end-to-end latency, reject
// rate, queue high-water) — uploaded by the CI release job next to
// BENCH_parallel.json / BENCH_inference.json.
//
// The arrival schedule is deterministic (seeded exponential
// inter-arrival draws), so runs are comparable; wall-clock results
// still vary with machine load. On hosts with >= 4 hardware threads the
// run asserts that batched throughput at the highest offered load is at
// least 1.5x the sequential baseline; on smaller hosts (where batching
// has no cores to fan out to) it only reports.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"
#include "serve/server.h"
#include "serve/tenant.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace explainti;

namespace {

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

struct LoadPointResult {
  double offered_rps = 0.0;
  int requests = 0;
  int accepted = 0;
  int rejected = 0;
  int expired = 0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  int64_t queue_high_water = 0;
  double mean_batch_size = 0.0;
};

// Drives one open-loop run: requests are submitted on the Poisson
// schedule regardless of completions (the open-loop property that
// exposes queueing collapse), then the server drains.
LoadPointResult RunLoadPoint(const core::InferenceSession& session,
                             const std::vector<int>& ids, int num_requests,
                             double offered_rps, uint64_t seed,
                             const serve::ServerOptions& options) {
  serve::InferenceServer server(session, options);

  std::vector<double> e2e_us(static_cast<size_t>(num_requests), -1.0);
  std::atomic<int> accepted{0}, rejected{0}, expired{0};
  std::atomic<int64_t> last_done_us{0};

  util::Rng rng(seed);
  // Pre-draw the whole arrival schedule so submission-time work is
  // minimal.
  std::vector<int64_t> offsets_us(static_cast<size_t>(num_requests));
  double t_us = 0.0;
  for (int i = 0; i < num_requests; ++i) {
    // Exponential inter-arrival with mean 1/lambda.
    t_us += -std::log(1.0 - rng.Uniform()) * 1e6 / offered_rps;
    offsets_us[static_cast<size_t>(i)] = static_cast<int64_t>(t_us);
  }

  const int64_t start_us = util::MonotonicNowUs();
  const auto start_tp = std::chrono::steady_clock::now();
  for (int i = 0; i < num_requests; ++i) {
    std::this_thread::sleep_until(
        start_tp + std::chrono::microseconds(offsets_us[static_cast<size_t>(i)]));
    serve::ServeRequest request;
    request.method = serve::ServeMethod::kPredict;
    request.task = core::TaskKind::kType;
    request.sample_id = ids[static_cast<size_t>(i) % ids.size()];
    request.trace_id = static_cast<uint64_t>(i);
    request.deadline_us = util::DeadlineAfterUs(2'000'000);
    double* slot = &e2e_us[static_cast<size_t>(i)];
    const util::Status admitted = server.Submit(
        request, [slot, &expired, &last_done_us](serve::ServeResponse&& r) {
          if (r.status.ok()) {
            *slot = static_cast<double>(r.total_us);
            int64_t now = util::MonotonicNowUs();
            int64_t prev = last_done_us.load(std::memory_order_relaxed);
            while (prev < now && !last_done_us.compare_exchange_weak(
                                     prev, now, std::memory_order_relaxed)) {
            }
          } else {
            expired.fetch_add(1, std::memory_order_relaxed);
          }
        });
    if (admitted.ok()) {
      accepted.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const int64_t high_water = server.batcher().high_water();
  server.Shutdown();  // Graceful drain: every accepted request completes.

  LoadPointResult result;
  result.offered_rps = offered_rps;
  result.requests = num_requests;
  result.accepted = accepted.load();
  result.rejected = rejected.load();
  result.expired = expired.load();
  result.queue_high_water = high_water;

  std::vector<double> completed;
  completed.reserve(e2e_us.size());
  for (double v : e2e_us) {
    if (v >= 0.0) completed.push_back(v);
  }
  const double span_s =
      static_cast<double>(last_done_us.load() - start_us) / 1e6;
  result.throughput_rps =
      span_s > 0.0 ? static_cast<double>(completed.size()) / span_s : 0.0;
  result.p50_us = Percentile(completed, 0.50);
  result.p99_us = Percentile(completed, 0.99);
  serve::Histogram* batch_hist = server.metrics().GetHistogram(
      "serve.batch_size", serve::Histogram::LinearBuckets(1, 1, 32));
  result.mean_batch_size = batch_hist->Mean();
  return result;
}

// ---------------------------------------------------------------------------
// Mixed-tenant overload phase.
//
// Three tenants share one server: an unlimited interactive tenant, a
// batch tenant one class down, and a background tenant capped at half
// the sequential capacity with a small burst. Inputs follow a Zipf
// popularity curve so the (enabled) response cache sees realistic reuse.
// Run at 1x and 2x the sequential capacity, the phase demonstrates the
// overload contract: the interactive tenant's p99 stays flat while the
// background tenant absorbs the shedding (quota rejects + preemption).

constexpr const char* kTenantNames[3] = {"interactive", "batch",
                                         "background"};

struct TenantPointStats {
  int submitted = 0;
  int accepted = 0;   ///< Submit returned OK (includes inline cache hits).
  int rejected = 0;   ///< Refused at admission (quota or full queue).
  int shed = 0;       ///< Admitted but failed later (preempted / expired).
  int cache_hits = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct MixedTenantResult {
  double load_factor = 0.0;
  double offered_rps = 0.0;
  int64_t queue_high_water = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  TenantPointStats tenants[3];
};

MixedTenantResult RunMixedTenantPoint(const core::InferenceSession& session,
                                      const std::vector<int>& ids,
                                      int num_requests, double offered_rps,
                                      double load_factor, uint64_t seed,
                                      serve::ServerOptions options,
                                      double sequential_rps) {
  serve::TenantRegistry tenants;
  int tenant_ids[3];
  {
    serve::TenantOptions interactive;
    interactive.name = kTenantNames[0];
    interactive.priority = serve::Priority::kInteractive;
    tenant_ids[0] = tenants.Register(interactive);
    serve::TenantOptions batch;
    batch.name = kTenantNames[1];
    batch.priority = serve::Priority::kBatch;
    tenant_ids[1] = tenants.Register(batch);
    serve::TenantOptions background;
    background.name = kTenantNames[2];
    background.priority = serve::Priority::kBackground;
    // Half the sequential capacity sustained, with a burst small enough
    // that the bucket (not the burst) governs the run: at 1x offered
    // load the background share (~0.3x) fits its quota; at 2x (~0.6x)
    // it must be shed.
    background.quota_rps = 0.5 * sequential_rps;
    background.burst = 4.0;
    tenant_ids[2] = tenants.Register(background);
  }
  options.tenants = &tenants;
  options.cache.enabled = true;
  serve::InferenceServer server(session, options);

  // Pre-draw the whole run: arrival offsets (Poisson), tenant of each
  // request (0.3 / 0.4 / 0.3), and a Zipf(1.2)-popular sample so the
  // cache sees skewed reuse instead of a uniform scan.
  util::Rng rng(seed);
  std::vector<double> zipf_cdf(ids.size());
  double zipf_total = 0.0;
  for (size_t i = 0; i < ids.size(); ++i) {
    zipf_total += 1.0 / std::pow(static_cast<double>(i + 1), 1.2);
    zipf_cdf[i] = zipf_total;
  }
  std::vector<int64_t> offsets_us(static_cast<size_t>(num_requests));
  std::vector<int> tenant_of(static_cast<size_t>(num_requests));
  std::vector<int> sample_of(static_cast<size_t>(num_requests));
  double t_us = 0.0;
  for (int i = 0; i < num_requests; ++i) {
    t_us += -std::log(1.0 - rng.Uniform()) * 1e6 / offered_rps;
    offsets_us[static_cast<size_t>(i)] = static_cast<int64_t>(t_us);
    const double tenant_draw = rng.Uniform();
    tenant_of[static_cast<size_t>(i)] =
        tenant_draw < 0.3 ? 0 : (tenant_draw < 0.7 ? 1 : 2);
    const double sample_draw = rng.Uniform() * zipf_total;
    const size_t rank = static_cast<size_t>(
        std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), sample_draw) -
        zipf_cdf.begin());
    sample_of[static_cast<size_t>(i)] =
        ids[std::min(rank, ids.size() - 1)];
  }

  // One slot per request, written by exactly one callback (worker thread
  // or, for cache hits, inline on this thread) and read only after
  // Shutdown() joins the workers.
  std::vector<double> e2e_us(static_cast<size_t>(num_requests), -1.0);
  std::vector<uint8_t> failed(static_cast<size_t>(num_requests), 0);
  std::vector<uint8_t> hit(static_cast<size_t>(num_requests), 0);
  std::vector<uint8_t> admitted(static_cast<size_t>(num_requests), 0);

  const auto start_tp = std::chrono::steady_clock::now();
  for (int i = 0; i < num_requests; ++i) {
    const size_t slot = static_cast<size_t>(i);
    std::this_thread::sleep_until(
        start_tp + std::chrono::microseconds(offsets_us[slot]));
    serve::ServeRequest request;
    request.method = serve::ServeMethod::kPredict;
    request.task = core::TaskKind::kType;
    request.sample_id = sample_of[slot];
    request.tenant_id = tenant_ids[tenant_of[slot]];
    request.trace_id = static_cast<uint64_t>(i);
    request.deadline_us = util::DeadlineAfterUs(2'000'000);
    util::WallTimer e2e_timer;
    const util::Status status = server.Submit(
        request, [&e2e_us, &failed, &hit, slot,
                  e2e_timer](serve::ServeResponse&& r) {
          if (r.status.ok()) {
            e2e_us[slot] = e2e_timer.ElapsedSeconds() * 1e6;
            hit[slot] = r.cache_hit ? 1 : 0;
          } else {
            failed[slot] = 1;
          }
        });
    if (status.ok()) admitted[slot] = 1;
  }
  const int64_t high_water = server.batcher().high_water();
  const int64_t cache_hits = server.cache()->hits();
  const int64_t cache_misses = server.cache()->misses();
  server.Shutdown();

  MixedTenantResult result;
  result.load_factor = load_factor;
  result.offered_rps = offered_rps;
  result.queue_high_water = high_water;
  result.cache_hits = cache_hits;
  result.cache_misses = cache_misses;
  std::vector<double> lat[3];
  for (int i = 0; i < num_requests; ++i) {
    const size_t slot = static_cast<size_t>(i);
    TenantPointStats& stats = result.tenants[tenant_of[slot]];
    ++stats.submitted;
    if (!admitted[slot]) {
      ++stats.rejected;
      continue;
    }
    ++stats.accepted;  // Passed admission; `shed` is the failed subset.
    if (failed[slot]) {
      ++stats.shed;
    } else {
      stats.cache_hits += hit[slot];
      lat[tenant_of[slot]].push_back(e2e_us[slot]);
    }
  }
  for (int t = 0; t < 3; ++t) {
    result.tenants[t].p50_us = Percentile(lat[t], 0.50);
    result.tenants[t].p99_us = Percentile(lat[t], 0.99);
  }
  return result;
}

void EmitMixedPoint(std::ofstream& json, const MixedTenantResult& m,
                    bool last) {
  json << "    {\"load_factor\": " << m.load_factor
       << ", \"offered_rps\": " << m.offered_rps
       << ", \"queue_high_water\": " << m.queue_high_water
       << ", \"cache\": {\"hits\": " << m.cache_hits
       << ", \"misses\": " << m.cache_misses << "},\n     \"tenants\": [\n";
  for (int t = 0; t < 3; ++t) {
    const TenantPointStats& s = m.tenants[t];
    json << "       {\"name\": \"" << kTenantNames[t]
         << "\", \"submitted\": " << s.submitted
         << ", \"accepted\": " << s.accepted
         << ", \"rejected\": " << s.rejected << ", \"shed\": " << s.shed
         << ", \"cache_hits\": " << s.cache_hits
         << ", \"p50_us\": " << s.p50_us << ", \"p99_us\": " << s.p99_us
         << "}" << (t == 2 ? "\n" : ",\n");
  }
  json << "     ]}" << (last ? "\n" : ",\n");
}

void EmitLoadPoint(std::ofstream& json, const LoadPointResult& r, bool last) {
  const double reject_rate =
      r.requests == 0 ? 0.0
                      : static_cast<double>(r.rejected) /
                            static_cast<double>(r.requests);
  json << "    {\"offered_rps\": " << r.offered_rps
       << ", \"requests\": " << r.requests << ", \"accepted\": " << r.accepted
       << ", \"rejected\": " << r.rejected
       << ", \"deadline_expired\": " << r.expired
       << ", \"reject_rate\": " << reject_rate
       << ", \"throughput_rps\": " << r.throughput_rps
       << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
       << ", \"queue_high_water\": " << r.queue_high_water
       << ", \"mean_batch_size\": " << r.mean_batch_size << "}"
       << (last ? "\n" : ",\n");
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  const bool quick = scale.name == "quick";
  std::cerr << "[serving] scale=" << scale.name << "\n";

  data::WikiTableOptions options;
  options.num_tables = quick ? 40 : 120;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);
  core::ExplainTiConfig config;
  config.sample_size = 4;
  config.top_k = 3;
  core::ExplainTiModel model(config, corpus);
  model.RefreshStores();
  const core::InferenceSession& session = model.session();

  const core::TaskData& task = model.task_data(core::TaskKind::kType);
  std::vector<int> ids;
  for (int id = 0;
       id < static_cast<int>(task.samples.size()) && ids.size() < 24; ++id) {
    ids.push_back(id);
  }
  CHECK(!ids.empty());

  // Warm the arenas on the calling thread and the pool before timing.
  for (int r = 0; r < 2; ++r) {
    for (int id : ids) session.Predict(core::TaskKind::kType, id);
    session.PredictBatch(core::TaskKind::kType, ids);
  }

  // Sequential one-request-at-a-time baseline (closed loop, one thread):
  // the reference the micro-batching server must beat.
  const int baseline_calls = quick ? 200 : 800;
  std::vector<double> baseline_us;
  baseline_us.reserve(static_cast<size_t>(baseline_calls));
  util::WallTimer baseline_timer;
  for (int i = 0; i < baseline_calls; ++i) {
    util::WallTimer call_timer;
    session.Predict(core::TaskKind::kType,
                    ids[static_cast<size_t>(i) % ids.size()]);
    baseline_us.push_back(call_timer.ElapsedSeconds() * 1e6);
  }
  const double baseline_s = baseline_timer.ElapsedSeconds();
  const double sequential_rps =
      static_cast<double>(baseline_calls) / baseline_s;
  std::cerr << "[serving] sequential baseline: " << sequential_rps
            << " rps (p50 " << Percentile(baseline_us, 0.50) << "us)\n";

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  serve::ServerOptions server_options;
  server_options.num_workers = static_cast<int>(std::clamp(hw / 2u, 1u, 4u));
  server_options.batcher.max_batch_size = 8;
  server_options.batcher.max_queue_wait_us = 1000;
  server_options.batcher.max_queue_depth = 64;

  // Open-loop Poisson offered loads relative to the sequential capacity:
  // comfortable, saturating, and overloaded. The overload point is where
  // admission control matters — the queue must stay bounded and shed
  // with kResourceExhausted instead of growing latency without bound.
  const double load_factors[] = {0.5, 1.0, 2.0};
  const int requests_per_point = quick ? 240 : 960;
  std::vector<LoadPointResult> points;
  for (size_t i = 0; i < 3; ++i) {
    const double offered = sequential_rps * load_factors[i];
    LoadPointResult r =
        RunLoadPoint(session, ids, requests_per_point, offered,
                     /*seed=*/1234 + i, server_options);
    std::cerr << "[serving] offered " << r.offered_rps << " rps -> served "
              << r.throughput_rps << " rps, p50 " << r.p50_us << "us p99 "
              << r.p99_us << "us, rejected " << r.rejected << "/"
              << r.requests << ", queue high-water " << r.queue_high_water
              << ", mean batch " << r.mean_batch_size << "\n";
    points.push_back(r);
  }

  // Mixed-tenant overload phase: 1x (comfortable) and 2x (overloaded)
  // the sequential capacity. Shares the single-tenant server shape but
  // enables the response cache and registers the three-tenant policy.
  const double mixed_factors[] = {1.0, 2.0};
  std::vector<MixedTenantResult> mixed;
  for (size_t i = 0; i < 2; ++i) {
    MixedTenantResult m = RunMixedTenantPoint(
        session, ids, requests_per_point, sequential_rps * mixed_factors[i],
        mixed_factors[i], /*seed=*/7100 + i, server_options, sequential_rps);
    std::cerr << "[serving] mixed " << m.load_factor << "x: cache "
              << m.cache_hits << "/" << (m.cache_hits + m.cache_misses)
              << " hits, queue high-water " << m.queue_high_water << "\n";
    for (int t = 0; t < 3; ++t) {
      const TenantPointStats& s = m.tenants[t];
      std::cerr << "[serving]   " << kTenantNames[t] << ": " << s.accepted
                << "/" << s.submitted << " accepted, " << s.rejected
                << " rejected, " << s.shed << " shed, p99 " << s.p99_us
                << "us\n";
    }
    mixed.push_back(m);
  }

  const LoadPointResult& peak = points.back();
  const double speedup = peak.throughput_rps / sequential_rps;
  std::cerr << "[serving] peak batched throughput " << peak.throughput_rps
            << " rps = " << speedup << "x sequential\n";

  // The queue must have stayed within its bound at every load point —
  // overload shows up as rejects, not as unbounded buffering.
  for (const LoadPointResult& r : points) {
    CHECK_LE(r.queue_high_water, server_options.batcher.max_queue_depth);
  }
  for (const MixedTenantResult& m : mixed) {
    CHECK_LE(m.queue_high_water, server_options.batcher.max_queue_depth);
  }
  // Batching needs cores to fan out to; gate the throughput assertion on
  // real hardware parallelism (CI release runners have >= 4). The
  // overload-isolation assertions are gated the same way: on a starved
  // host the submit thread cannot even hold the offered schedule, so the
  // 2x point degenerates.
  if (hw >= 4) {
    CHECK_GE(speedup, 1.5)
        << "micro-batched serving failed to beat sequential by 1.5x";
    // Overload isolation: doubling the offered load must not move the
    // interactive tenant's p99 by more than 10% (plus a small absolute
    // slack for timer noise on sub-millisecond tails)...
    const TenantPointStats& inter_1x = mixed[0].tenants[0];
    const TenantPointStats& inter_2x = mixed[1].tenants[0];
    CHECK_LE(inter_2x.p99_us, 1.10 * inter_1x.p99_us + 5000.0)
        << "interactive p99 degraded under 2x overload: " << inter_1x.p99_us
        << "us -> " << inter_2x.p99_us << "us";
    // ...because the background tenant absorbed the excess: its quota
    // (0.5x capacity vs ~0.6x offered share) plus preemption must have
    // shed traffic at the 2x point.
    const TenantPointStats& bg_2x = mixed[1].tenants[2];
    CHECK_GT(bg_2x.rejected + bg_2x.shed, 0)
        << "background tenant was not shed under 2x overload";
  }

  std::ofstream json("BENCH_serving.json");
  CHECK(json.good()) << "cannot open BENCH_serving.json";
  json << "{\n  " << bench::HostMetaJson()
       << ",\n  \"hardware_threads\": " << hw
       << ",\n  \"server\": {\"num_workers\": " << server_options.num_workers
       << ", \"max_batch_size\": " << server_options.batcher.max_batch_size
       << ", \"max_queue_wait_us\": "
       << server_options.batcher.max_queue_wait_us
       << ", \"max_queue_depth\": " << server_options.batcher.max_queue_depth
       << "},\n  \"sequential\": {\"throughput_rps\": " << sequential_rps
       << ", \"p50_us\": " << Percentile(baseline_us, 0.50)
       << ", \"p99_us\": " << Percentile(baseline_us, 0.99)
       << "},\n  \"load_points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    EmitLoadPoint(json, points[i], i + 1 == points.size());
  }
  json << "  ],\n  \"peak_speedup_vs_sequential\": " << speedup
       << ",\n  \"mixed_tenant\": {\n    \"requests_per_point\": "
       << requests_per_point
       << ",\n    \"background_quota_rps\": " << 0.5 * sequential_rps
       << ",\n    \"points\": [\n";
  for (size_t i = 0; i < mixed.size(); ++i) {
    EmitMixedPoint(json, mixed[i], i + 1 == mixed.size());
  }
  json << "    ]\n  }\n}\n";
  std::cerr << "[serving] wrote BENCH_serving.json\n";
  return 0;
}
