// Reproduces paper Figure 5: plausibility (adequate justification and
// understandability, % of judge votes) and trustability (mean 1-5 trust
// score) of each method's explanations, scored by the simulated-judge
// model (50 judges; substitution for the paper's human study, DESIGN.md).
//
// Expected shape: ExplainTI clearly ahead of SelfExplain, which is ahead
// of Influence Functions and Saliency Map.

#include <iostream>

#include "baselines/doduo.h"
#include "baselines/posthoc.h"
#include "baselines/self_explain.h"
#include "bench/bench_common.h"
#include "eval/human_sim.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace explainti;

namespace {

constexpr int kNumJudges = 50;
constexpr int kSamplesPerTask = 160;  // Paper: 960 samples over two tasks.

bool PredictionCorrect(const std::vector<int>& predicted,
                       const std::vector<int>& gold) {
  for (int p : predicted) {
    for (int g : gold) {
      if (p == g) return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  std::cerr << "[fig5] scale=" << scale.name << "\n";
  const data::TableCorpus wiki = bench::MakeWikiCorpus(scale);

  core::ExplainTiModel explain_ti(
      bench::MakeExplainTiConfig(scale, "roberta"), wiki);
  explain_ti.Fit();
  std::cerr << "[fig5] ExplainTI fitted\n";
  auto doduo =
      baselines::MakeDoduo(bench::MakeBaselineConfig(scale, "roberta"));
  doduo->Fit(wiki);
  auto self_explain = baselines::MakeSelfExplain(
      bench::MakeBaselineConfig(scale, "roberta"));
  self_explain->Fit(wiki);
  std::cerr << "[fig5] hosts fitted\n";

  const std::vector<std::string> methods = {
      "Saliency Map", "Influence Functions", "SelfExplain", "ExplainTI"};
  std::vector<std::vector<eval::JudgedExplanation>> judged(methods.size());

  for (core::TaskKind kind :
       {core::TaskKind::kType, core::TaskKind::kRelation}) {
    const core::TaskData& task = explain_ti.task_data(kind);
    baselines::InfluenceFunctions influence(*doduo, kind);
    int used = 0;
    for (int id : task.test_ids) {
      if (used++ >= kSamplesPerTask) break;
      const core::TaskSample& sample =
          task.samples[static_cast<size_t>(id)];
      const int tokens = static_cast<int>(sample.seq.ids.size());

      // Saliency Map: ten isolated tokens.
      {
        eval::JudgedExplanation j;
        j.items = baselines::SaliencyExplanation(*doduo, kind, id, 10);
        j.evidence = sample.evidence;
        j.prediction_correct =
            PredictionCorrect(doduo->Predict(kind, id), sample.labels);
        j.sample_tokens = tokens;
        judged[0].push_back(std::move(j));
      }
      // Influence Functions: one whole training sample.
      {
        eval::JudgedExplanation j;
        const std::vector<int> top = influence.TopInfluential(id, 1);
        if (!top.empty()) j.items.push_back(influence.ExplanationText(top[0]));
        j.evidence = sample.evidence;
        j.prediction_correct =
            PredictionCorrect(doduo->Predict(kind, id), sample.labels);
        j.sample_tokens = tokens;
        judged[1].push_back(std::move(j));
      }
      // SelfExplain: top local chunks + top global sample.
      {
        eval::JudgedExplanation j;
        j.items = self_explain->TopLocalChunks(kind, id, 2);
        for (int train_id : self_explain->TopGlobalSamples(kind, id, 1)) {
          j.items.push_back(
              self_explain->task_data(kind).SampleText(train_id));
        }
        j.evidence = sample.evidence;
        j.prediction_correct = PredictionCorrect(
            self_explain->Predict(kind, id), sample.labels);
        j.sample_tokens = tokens;
        judged[2].push_back(std::move(j));
      }
      // ExplainTI: multi-view — top window, top retrieved, top neighbour.
      {
        const core::Explanation z = explain_ti.Explain(kind, id);
        eval::JudgedExplanation j;
        if (!z.local.empty()) j.items.push_back(z.local[0].text);
        if (!z.global.empty()) j.items.push_back(z.global[0].text);
        if (!z.structural.empty()) j.items.push_back(z.structural[0].text);
        j.evidence = sample.evidence;
        j.prediction_correct =
            PredictionCorrect(z.predicted_labels, sample.labels);
        j.sample_tokens = tokens;
        judged[3].push_back(std::move(j));
      }
    }
  }

  util::TablePrinter printer({"Method", "Adequacy %", "Understandability %",
                              "Mean trust (1-5)", "Evidence coverage"});
  for (size_t m = 0; m < methods.size(); ++m) {
    const eval::HumanEvalResult result =
        eval::SimulateJudges(judged[m], kNumJudges, /*seed=*/2023 + m);
    printer.AddRow({methods[m], bench::F1(result.adequacy_pct),
                    bench::F1(result.understandability_pct),
                    util::FormatDouble(result.mean_trust, 2),
                    bench::F3(result.evidence_coverage)});
  }

  std::cout << "=== Figure 5: plausibility and trustability (simulated "
               "judges, "
            << kNumJudges << " judges; scale: " << scale.name << ") ===\n";
  printer.Print(std::cout);
  std::cout << "paper reference: ExplainTI +62% adequacy and +43% "
               "understandability over SelfExplain; highest mean trust.\n";
  return 0;
}
