// Reproduces paper Figure 3: sufficiency of ExplainTI-LE against a
// random-window selection strategy — windows chosen uniformly instead of
// by relevance score RS.
//
// Expected shape: ExplainTI-LE beats random selection on every task, and
// even random windows remain competitive with constituent-style baselines
// (the paper's argument that sliding windows fit tables better than
// parsing).

#include <iostream>

#include "bench/bench_common.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace explainti;

namespace {

std::string TopWindows(const core::Explanation& z, int k) {
  std::vector<std::string> texts;
  for (size_t i = 0; i < z.local.size() && static_cast<int>(i) < k; ++i) {
    texts.push_back(z.local[i].text);
  }
  return util::Join(texts, " ");
}

std::string RandomWindows(const core::Explanation& z, int k,
                          util::Rng& rng) {
  if (z.local.empty()) return "";
  std::vector<std::string> texts;
  for (int i = 0; i < k; ++i) {
    texts.push_back(
        z.local[static_cast<size_t>(rng.UniformInt(z.local.size()))].text);
  }
  return util::Join(texts, " ");
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  std::cerr << "[fig3] scale=" << scale.name << "\n";
  const data::TableCorpus wiki = bench::MakeWikiCorpus(scale);
  const data::TableCorpus git = bench::MakeGitCorpus(scale);

  util::TablePrinter printer(
      {"Task", "ExplainTI-LE F1w", "Random windows F1w"});

  for (const data::TableCorpus* corpus : {&wiki, &git}) {
    core::ExplainTiModel model(bench::MakeExplainTiConfig(scale, "roberta"),
                               *corpus);
    model.Fit();
    std::cerr << "[fig3] model fitted on " << corpus->name << "\n";

    for (core::TaskKind kind :
         {core::TaskKind::kType, core::TaskKind::kRelation}) {
      if (!model.HasTask(kind)) continue;
      const core::TaskData& task = model.task_data(kind);
      const std::string task_name = std::string(corpus->name) + "/" +
                                    core::TaskKindName(kind);

      util::Rng rng(404);
      const eval::ExplanationDataset le_dataset =
          bench::BuildExplanationDataset(task, [&](int id) {
            return TopWindows(model.Explain(kind, id), 3);
          });
      const eval::ExplanationDataset random_dataset =
          bench::BuildExplanationDataset(task, [&](int id) {
            return RandomWindows(model.Explain(kind, id), 3, rng);
          });

      const eval::F1Scores le_f1 = eval::EvaluateSufficiency(le_dataset);
      const eval::F1Scores random_f1 =
          eval::EvaluateSufficiency(random_dataset);
      printer.AddRow({task_name, bench::F3(le_f1.weighted),
                      bench::F3(random_f1.weighted)});
      std::cerr << "[fig3] " << task_name << " LE=" << bench::F3(le_f1.weighted)
                << " random=" << bench::F3(random_f1.weighted) << "\n";
    }
  }

  std::cout << "=== Figure 3: ExplainTI-LE vs random window selection "
               "(sufficiency F1-weighted; scale: "
            << scale.name << ") ===\n";
  printer.Print(std::cout);
  std::cout << "paper reference: LE above random on all tasks; random "
               "windows still above SelfExplain-Local.\n";
  return 0;
}
