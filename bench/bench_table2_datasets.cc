// Reproduces paper Table II: statistics of the datasets.
//
// Paper values (for reference; our corpora are synthetic stand-ins, see
// DESIGN.md):
//   WikiTable  Web tables      462,676 tables  12.4 rows  1.7 cols  255/121
//   GitTable   database tables  12,200 tables 152.9 rows  4.0 cols  1,141

#include <iostream>

#include "bench/bench_common.h"
#include "util/table_printer.h"

using namespace explainti;

int main() {
  const bench::Scale scale = bench::GetScale();
  std::cout << "=== Table II: statistics of the datasets (scale: "
            << scale.name << ") ===\n";

  util::TablePrinter printer({"Name", "type", "# tables", "Avg. # rows",
                              "Avg. # cols", "# labels"});
  for (const auto& [corpus, kind] :
       {std::make_pair(bench::MakeWikiCorpus(scale),
                       std::string("Web tables")),
        std::make_pair(bench::MakeGitCorpus(scale),
                       std::string("database tables"))}) {
    const data::CorpusStatistics stats = data::ComputeStatistics(corpus);
    std::string labels = std::to_string(stats.num_type_labels);
    if (stats.num_relation_labels > 0) {
      labels += "/" + std::to_string(stats.num_relation_labels);
    }
    printer.AddRow({corpus.name, kind, std::to_string(stats.num_tables),
                    bench::F1(stats.avg_rows), bench::F1(stats.avg_cols),
                    labels});
  }
  printer.Print(std::cout);

  std::cout << "\npaper Table II (original corpora):\n"
            << "  WikiTable  Web tables       462676 tables  12.4 rows  "
               "1.7 cols  255/121 labels\n"
            << "  GitTable   database tables   12200 tables 152.9 rows  "
               "4.0 cols  1141 labels\n";
  return 0;
}
