// Measures the table-QA composition layer and the explanation-distilled
// surrogate cascade, and emits BENCH_qa.json for the ci/check_bench.py
// qa gate:
//
//   * teacher-path answer agreement vs the direct-prediction oracle
//     (composing through QaEngine must reproduce InferenceSession::Predict
//     bit-for-bit — gated at >= 0.999, i.e. exact);
//   * answer micro-F1 vs the corpus gold labels, teacher and surrogate
//     tiers side by side, on BOTH synthetic corpora (wiki + git) after a
//     short Fit;
//   * surrogate-vs-teacher answer agreement per (corpus, task) — the
//     distillation-fidelity number the cascade's cheap tier stands on
//     (gated at >= 0.85 on both corpora);
//   * cascade p50/p99 answer latency and escalation rate at three
//     confidence thresholds (escalation must be monotone in the
//     threshold);
//   * raw per-table scoring cost: surrogate ScoreInto vs teacher
//     PredictProbabilities p50 (the >= 2x surrogate advantage is armed
//     on >= 4-thread hosts only);
//   * steady-state allocation behaviour of the warmed surrogate scoring
//     path (must be exactly zero);
//   * composed-justification evidence coverage vs its constituent
//     single-prediction coverage (composition must not dilute evidence),
//     plus a SimulateJudges pass over composed answers.
//
// The binary hard-fails if the surrogate fails to distill (the cascade
// falling closed would silently turn every comparison into
// teacher-vs-teacher) or if the warmed scoring path touches the heap.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/git_generator.h"
#include "data/wiki_generator.h"
#include "eval/human_sim.h"
#include "qa/engine.h"
#include "qa/query.h"
#include "qa/surrogate.h"
#include "tests/golden_evidence.h"
#include "util/alloc_counter.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace explainti;

namespace {

double Percentile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const size_t idx =
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

const char* TaskName(core::TaskKind kind) {
  return kind == core::TaskKind::kType ? "type" : "relation";
}

qa::QaQueryKind PointKind(core::TaskKind kind) {
  return kind == core::TaskKind::kType ? qa::QaQueryKind::kColumnType
                                       : qa::QaQueryKind::kRelationBetween;
}

qa::QaQuery PointQuery(core::TaskKind kind, int sample_id) {
  qa::QaQuery query;
  query.kind = PointKind(kind);
  query.sample_ids = {sample_id};
  return query;
}

// Micro-F1 of predicted label sets vs gold label sets.
struct MicroF1 {
  int64_t tp = 0, fp = 0, fn = 0;
  void Add(const std::vector<int>& predicted, const std::vector<int>& gold) {
    for (int label : predicted) {
      if (std::find(gold.begin(), gold.end(), label) != gold.end()) {
        ++tp;
      } else {
        ++fp;
      }
    }
    for (int label : gold) {
      if (std::find(predicted.begin(), predicted.end(), label) ==
          predicted.end()) {
        ++fn;
      }
    }
  }
  double Value() const {
    const double denom = static_cast<double>(2 * tp + fp + fn);
    return denom > 0.0 ? 2.0 * static_cast<double>(tp) / denom : 0.0;
  }
};

// Per-(corpus, task) accuracy row: teacher-vs-oracle, gold F1 for both
// tiers, and the surrogate's answer agreement with the teacher.
struct AccuracyRow {
  const char* corpus;
  const char* task;
  int samples = 0;
  double oracle_agreement = 0.0;
  double teacher_f1 = 0.0;
  double surrogate_f1 = 0.0;
  double surrogate_agreement = 0.0;
};

AccuracyRow MeasureAccuracy(const char* corpus,
                            const core::InferenceSession& session,
                            core::TaskKind kind, qa::QaEngine& teacher,
                            qa::QaEngine& cascade) {
  const core::TaskData& task = session.task_data(kind);
  AccuracyRow row;
  row.corpus = corpus;
  row.task = TaskName(kind);
  row.samples = static_cast<int>(task.samples.size());
  MicroF1 teacher_f1, surrogate_f1;
  int oracle_agree = 0, surrogate_agree = 0;
  for (int id = 0; id < row.samples; ++id) {
    const qa::QaQuery query = PointQuery(kind, id);
    const auto teacher_answer = teacher.Answer(query);
    CHECK(teacher_answer.ok()) << teacher_answer.status().ToString();
    // Threshold 0: every step routed to the surrogate tier.
    const auto surrogate_answer = cascade.AnswerWithThreshold(query, 0.0f);
    CHECK(surrogate_answer.ok()) << surrogate_answer.status().ToString();
    CHECK_EQ(surrogate_answer.value().escalated_steps, 0)
        << "threshold-0 cascade escalated — the surrogate tier is down";

    const std::vector<int>& teacher_labels =
        teacher_answer.value().entries[0].labels;
    const std::vector<int>& surrogate_labels =
        surrogate_answer.value().entries[0].labels;
    const std::vector<int>& gold =
        task.samples[static_cast<size_t>(id)].labels;
    oracle_agree += teacher_labels == session.Predict(kind, id) ? 1 : 0;
    surrogate_agree += surrogate_labels == teacher_labels ? 1 : 0;
    teacher_f1.Add(teacher_labels, gold);
    surrogate_f1.Add(surrogate_labels, gold);
  }
  row.oracle_agreement =
      static_cast<double>(oracle_agree) / static_cast<double>(row.samples);
  row.surrogate_agreement =
      static_cast<double>(surrogate_agree) / static_cast<double>(row.samples);
  row.teacher_f1 = teacher_f1.Value();
  row.surrogate_f1 = surrogate_f1.Value();
  return row;
}

struct CascadePoint {
  double threshold = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double escalation_rate = 0.0;
};

CascadePoint MeasureCascade(qa::QaEngine& cascade, core::TaskKind kind,
                            int num_samples, float threshold) {
  CascadePoint point;
  point.threshold = threshold;
  std::vector<double> lat_us;
  int64_t surrogate_steps = 0, escalated_steps = 0;
  for (int id = 0; id < num_samples; ++id) {  // Warm-up pass.
    CHECK(cascade.AnswerWithThreshold(PointQuery(kind, id), threshold).ok());
  }
  const int kRounds = 8;
  for (int r = 0; r < kRounds; ++r) {
    for (int id = 0; id < num_samples; ++id) {
      const qa::QaQuery query = PointQuery(kind, id);
      util::WallTimer timer;
      const auto answer = cascade.AnswerWithThreshold(query, threshold);
      lat_us.push_back(timer.ElapsedSeconds() * 1e6);
      CHECK(answer.ok()) << answer.status().ToString();
      surrogate_steps += answer.value().surrogate_steps;
      escalated_steps += answer.value().escalated_steps;
    }
  }
  point.p50_us = Percentile(lat_us, 0.50);
  point.p99_us = Percentile(lat_us, 0.99);
  point.escalation_rate =
      static_cast<double>(escalated_steps) /
      static_cast<double>(std::max<int64_t>(surrogate_steps + escalated_steps,
                                            1));
  return point;
}

}  // namespace

int main() {
  util::SetGlobalThreadCount(1);  // Per-call latency, not batch throughput.

  // -- Trained models on both synthetic corpora ---------------------------
  const core::ExplainTiConfig config = explainti::testing::GoldenConfig();
  const data::TableCorpus wiki = explainti::testing::GoldenCorpus();
  data::GitTableOptions git_options;
  git_options.num_tables = 20;
  const data::TableCorpus git = data::GenerateGitTableCorpus(git_options);

  core::ExplainTiModel wiki_model(config, wiki);
  wiki_model.Fit();
  core::ExplainTiModel git_model(config, git);
  git_model.Fit();

  qa::QaOptions cascade_options;
  cascade_options.enable_surrogate = true;

  std::vector<AccuracyRow> rows;
  double min_oracle = 1.0, min_surrogate = 1.0;
  struct CorpusEngines {
    const char* name;
    const core::InferenceSession* session;
    std::unique_ptr<qa::QaEngine> teacher;
    std::unique_ptr<qa::QaEngine> cascade;
  };
  std::vector<CorpusEngines> corpora;
  for (auto& [name, model] :
       {std::pair<const char*, core::ExplainTiModel*>{"wiki", &wiki_model},
        {"git", &git_model}}) {
    CorpusEngines engines;
    engines.name = name;
    engines.session = &model->session();
    engines.teacher =
        std::make_unique<qa::QaEngine>(engines.session, qa::QaOptions{});
    engines.cascade =
        std::make_unique<qa::QaEngine>(engines.session, cascade_options);
    CHECK(engines.cascade->surrogate_active())
        << name << ": surrogate failed to distill: "
        << engines.cascade->surrogate_status().ToString();
    for (core::TaskKind kind :
         {core::TaskKind::kType, core::TaskKind::kRelation}) {
      if (!engines.session->HasTask(kind)) continue;  // Git has no relation.
      rows.push_back(MeasureAccuracy(name, *engines.session, kind,
                                     *engines.teacher, *engines.cascade));
      const AccuracyRow& row = rows.back();
      min_oracle = std::min(min_oracle, row.oracle_agreement);
      min_surrogate = std::min(min_surrogate, row.surrogate_agreement);
      std::cerr << "[qa] " << row.corpus << "/" << row.task << ": oracle "
                << row.oracle_agreement << ", teacher F1 " << row.teacher_f1
                << ", surrogate F1 " << row.surrogate_f1 << ", agreement "
                << row.surrogate_agreement << "\n";
    }
    corpora.push_back(std::move(engines));
  }

  // -- Cascade latency + escalation at three thresholds -------------------
  qa::QaEngine& wiki_cascade = *corpora[0].cascade;
  const int wiki_type_samples = static_cast<int>(
      corpora[0].session->task_data(core::TaskKind::kType).samples.size());
  std::vector<CascadePoint> cascade_points;
  for (float threshold : {0.5f, 0.8f, 0.95f}) {
    cascade_points.push_back(MeasureCascade(
        wiki_cascade, core::TaskKind::kType, wiki_type_samples, threshold));
    const CascadePoint& point = cascade_points.back();
    std::cerr << "[qa] cascade @" << point.threshold << ": p50 "
              << point.p50_us << "us p99 " << point.p99_us
              << "us, escalation " << point.escalation_rate << "\n";
  }

  // -- Raw per-table tier cost: ScoreInto vs PredictProbabilities ---------
  const qa::SurrogateModel* surrogate =
      wiki_cascade.surrogate(core::TaskKind::kType);
  CHECK(surrogate != nullptr);
  qa::SurrogateModel::Scratch scratch;
  float confidence = 0.0f;
  std::vector<double> surrogate_us, teacher_us;
  for (int id = 0; id < wiki_type_samples; ++id) {  // Warm-up.
    CHECK(surrogate->ScoreInto(id, &scratch, &confidence).ok());
    corpora[0].session->PredictProbabilities(core::TaskKind::kType, id);
  }
  const int kScoreRounds = 20;
  for (int r = 0; r < kScoreRounds; ++r) {
    for (int id = 0; id < wiki_type_samples; ++id) {
      util::WallTimer t1;
      CHECK(surrogate->ScoreInto(id, &scratch, &confidence).ok());
      surrogate_us.push_back(t1.ElapsedSeconds() * 1e6);
      util::WallTimer t2;
      corpora[0].session->PredictProbabilities(core::TaskKind::kType, id);
      teacher_us.push_back(t2.ElapsedSeconds() * 1e6);
    }
  }
  const double surrogate_p50 = Percentile(surrogate_us, 0.50);
  const double teacher_p50 = Percentile(teacher_us, 0.50);
  const double tier_speedup =
      surrogate_p50 > 0.0 ? teacher_p50 / surrogate_p50 : 0.0;
  std::cerr << "[qa] per-table scoring: surrogate p50 " << surrogate_p50
            << "us vs teacher p50 " << teacher_p50 << "us ("
            << tier_speedup << "x)\n";

  // -- Surrogate scoring path: zero allocations after warm-up -------------
  double score_allocs = 0.0;
  {
    const int kAllocRounds = 200;
    CHECK(surrogate->ScoreInto(0, &scratch, &confidence).ok());
    const util::AllocCounts before = util::ThisThreadAllocCounts();
    for (int r = 0; r < kAllocRounds; ++r) {
      CHECK(surrogate->ScoreInto(r % wiki_type_samples, &scratch,
                                 &confidence).ok());
    }
    const util::AllocCounts after = util::ThisThreadAllocCounts();
    score_allocs =
        static_cast<double>(after.allocations - before.allocations) /
        static_cast<double>(kAllocRounds);
    CHECK_EQ(after.allocations, before.allocations)
        << "warmed-up surrogate ScoreInto allocated on the heap";
  }

  // -- Composed-justification coverage + simulated judges -----------------
  // An "any relation" find qualifies every candidate with its top label,
  // so the composed answer the judges score is non-empty regardless of
  // how the trained heads are calibrated (a targeted multi-label find can
  // legitimately select nothing when every probability sits below 0.5).
  const core::TaskData& wiki_relation =
      corpora[0].session->task_data(core::TaskKind::kRelation);
  qa::QaQuery find;
  find.kind = qa::QaQueryKind::kFindRelatedPairs;
  const int relation_samples = static_cast<int>(wiki_relation.samples.size());
  for (int id = 0; id < std::min(relation_samples, 12); ++id) {
    find.sample_ids.push_back(id);
  }
  find.label_id = -1;
  find.top_k = static_cast<int>(find.sample_ids.size());
  const auto composed = corpora[0].teacher->Answer(find);
  CHECK(composed.ok()) << composed.status().ToString();
  CHECK(!composed.value().entries.empty());
  const explainti::testing::QaCoverage coverage =
      explainti::testing::ComposedJustificationCoverage(
          wiki_relation, composed.value().justification);
  const eval::HumanEvalResult judged = eval::SimulateJudges(
      explainti::testing::JudgedQaAnswer(wiki_relation, composed.value()),
      /*num_judges=*/10, /*seed=*/7);
  std::cerr << "[qa] coverage: constituent " << coverage.constituent
            << " composed " << coverage.composed << " over " << coverage.items
            << " items; judges: adequacy " << judged.adequacy_pct
            << "% coverage " << judged.evidence_coverage << "\n";

  // -- JSON ---------------------------------------------------------------
  std::ofstream json("BENCH_qa.json");
  CHECK(json.good()) << "cannot open BENCH_qa.json";
  json << "{\n  " << bench::HostMetaJson() << ",\n  \"qa\": {\n"
       << "    \"accuracy\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const AccuracyRow& row = rows[i];
    json << "      {\"corpus\": \"" << row.corpus << "\", \"task\": \""
         << row.task << "\", \"samples\": " << row.samples
         << ", \"oracle_agreement\": " << row.oracle_agreement
         << ", \"teacher_f1\": " << row.teacher_f1
         << ", \"surrogate_f1\": " << row.surrogate_f1
         << ", \"surrogate_agreement\": " << row.surrogate_agreement << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "    ],\n"
       << "    \"min_oracle_agreement\": " << min_oracle << ",\n"
       << "    \"min_surrogate_agreement\": " << min_surrogate << ",\n"
       << "    \"cascade\": [\n";
  for (size_t i = 0; i < cascade_points.size(); ++i) {
    const CascadePoint& point = cascade_points[i];
    json << "      {\"threshold\": " << point.threshold
         << ", \"p50_us\": " << point.p50_us
         << ", \"p99_us\": " << point.p99_us
         << ", \"escalation_rate\": " << point.escalation_rate << "}"
         << (i + 1 < cascade_points.size() ? ",\n" : "\n");
  }
  json << "    ],\n"
       << "    \"tiers\": {\"surrogate_score_p50_us\": " << surrogate_p50
       << ", \"teacher_predict_p50_us\": " << teacher_p50
       << ", \"surrogate_speedup\": " << tier_speedup << "},\n"
       << "    \"surrogate_scoring\": {\"allocations_per_call\": "
       << score_allocs << "},\n"
       << "    \"coverage\": {\"constituent\": " << coverage.constituent
       << ", \"composed\": " << coverage.composed
       << ", \"items\": " << coverage.items
       << ", \"judge_adequacy_pct\": " << judged.adequacy_pct
       << ", \"judge_evidence_coverage\": " << judged.evidence_coverage
       << "}\n  }\n}\n";
  std::cerr << "[qa] wrote BENCH_qa.json\n";
  return 0;
}
