// Reproduces paper Table IV: sufficiency of explanations (FRESH
// protocol). Each method's explanations replace the inputs, a fresh probe
// classifier is trained on explanation text alone, and its test F1
// measures how much label signal the explanations carry.
//
// Per the paper: K=10 explanation units for Saliency Map (its units are
// single tokens), K=3 for SelfExplain-Local/Global and ExplainTI-LE, and
// K=1 for ExplainTI-GE / ExplainTI-SE. Explanations come from
// ExplainTI-RoBERTa; Saliency and Influence Functions are post-hoc on a
// trained Doduo.
//
// Expected shape: ExplainTI-GE ~ full-text performance with a single
// retrieved sample; ExplainTI-SE close behind (ahead on relations);
// ExplainTI-LE well above SelfExplain-Local; Saliency and Influence
// Functions near the floor.

#include <iostream>

#include "baselines/doduo.h"
#include "baselines/posthoc.h"
#include "baselines/self_explain.h"
#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace explainti;

namespace {

struct TaskSetup {
  std::string column_name;
  const data::TableCorpus* corpus;
  core::TaskKind kind;
};

std::string JoinTexts(const std::vector<std::string>& texts) {
  return util::Join(texts, " ");
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  std::cerr << "[table4] scale=" << scale.name << "\n";
  const data::TableCorpus wiki = bench::MakeWikiCorpus(scale);
  const data::TableCorpus git = bench::MakeGitCorpus(scale);

  const std::vector<TaskSetup> setups = {
      {"Wiki-Type", &wiki, core::TaskKind::kType},
      {"Wiki-Relation", &wiki, core::TaskKind::kRelation},
      {"Git-Type", &git, core::TaskKind::kType},
  };

  // Method -> column -> F1.
  const std::vector<std::string> methods = {
      "Saliency Map",       "Influence Functions", "SelfExplain-Local",
      "SelfExplain-Global", "ExplainTI-LE",        "ExplainTI-GE",
      "ExplainTI-SE"};
  std::vector<std::vector<eval::F1Scores>> results(
      methods.size(), std::vector<eval::F1Scores>(setups.size()));

  for (const data::TableCorpus* corpus : {&wiki, &git}) {
    util::WallTimer timer;
    // Train the three explanation sources on this corpus.
    core::ExplainTiModel explain_ti(
        bench::MakeExplainTiConfig(scale, "roberta"), *corpus);
    explain_ti.Fit();
    std::cerr << "[table4] ExplainTI-RoBERTa fitted on " << corpus->name
              << " in " << bench::F1(timer.ElapsedSeconds()) << "s\n";

    timer.Restart();
    auto doduo = baselines::MakeDoduo(bench::MakeBaselineConfig(scale, "roberta"));
    doduo->Fit(*corpus);
    auto self_explain = baselines::MakeSelfExplain(
        bench::MakeBaselineConfig(scale, "roberta"));
    self_explain->Fit(*corpus);
    std::cerr << "[table4] hosts fitted on " << corpus->name << " in "
              << bench::F1(timer.ElapsedSeconds()) << "s\n";

    for (size_t setup_index = 0; setup_index < setups.size(); ++setup_index) {
      const TaskSetup& setup = setups[setup_index];
      if (setup.corpus != corpus) continue;
      if (!explain_ti.HasTask(setup.kind)) continue;
      const core::TaskData& task = explain_ti.task_data(setup.kind);

      baselines::InfluenceFunctions influence(*doduo, setup.kind);

      const std::vector<std::function<std::string(int)>> explainers = {
          // Saliency Map: top-10 tokens.
          [&](int id) {
            return JoinTexts(
                baselines::SaliencyExplanation(*doduo, setup.kind, id, 10));
          },
          // Influence Functions: top-1 influential training sample.
          [&](int id) {
            const std::vector<int> top = influence.TopInfluential(id, 1);
            return top.empty() ? std::string()
                               : influence.ExplanationText(top[0]);
          },
          // SelfExplain-Local: top-3 concept chunks.
          [&](int id) {
            return JoinTexts(
                self_explain->TopLocalChunks(setup.kind, id, 3));
          },
          // SelfExplain-Global: top-3 retrieved training samples.
          [&](int id) {
            std::vector<std::string> texts;
            for (int train_id :
                 self_explain->TopGlobalSamples(setup.kind, id, 3)) {
              texts.push_back(
                  self_explain->task_data(setup.kind).SampleText(train_id));
            }
            return JoinTexts(texts);
          },
          // ExplainTI-LE: top-3 relevant windows.
          [&](int id) {
            const core::Explanation z = explain_ti.Explain(setup.kind, id);
            std::vector<std::string> texts;
            for (size_t i = 0; i < z.local.size() && i < 3; ++i) {
              texts.push_back(z.local[i].text);
            }
            return JoinTexts(texts);
          },
          // ExplainTI-GE: top-1 influential sample.
          [&](int id) {
            const core::Explanation z = explain_ti.Explain(setup.kind, id);
            return z.global.empty() ? std::string() : z.global[0].text;
          },
          // ExplainTI-SE: top-1 neighbour.
          [&](int id) {
            const core::Explanation z = explain_ti.Explain(setup.kind, id);
            return z.structural.empty() ? std::string()
                                        : z.structural[0].text;
          },
      };

      for (size_t m = 0; m < methods.size(); ++m) {
        util::WallTimer method_timer;
        const eval::ExplanationDataset dataset =
            bench::BuildExplanationDataset(task, explainers[m]);
        results[m][setup_index] = eval::EvaluateSufficiency(dataset);
        std::cerr << "[table4] " << methods[m] << " / " << setup.column_name
                  << ": F1w="
                  << bench::F3(results[m][setup_index].weighted) << " ("
                  << bench::F1(method_timer.ElapsedSeconds()) << "s)\n";
      }
    }
  }

  util::TablePrinter printer({"Method", "WikiType u", "WikiType M",
                              "WikiType w", "WikiRel u", "WikiRel M",
                              "WikiRel w", "GitType u", "GitType M",
                              "GitType w"});
  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row = {methods[m]};
    for (size_t s = 0; s < setups.size(); ++s) {
      row.push_back(bench::F3(results[m][s].micro));
      row.push_back(bench::F3(results[m][s].macro));
      row.push_back(bench::F3(results[m][s].weighted));
    }
    printer.AddRow(row);
    if (m == 3) printer.AddSeparator();  // Baselines above, ExplainTI below.
  }

  std::cout << "=== Table IV: sufficiency of explanations (FRESH probe, "
               "scale: "
            << scale.name << ") ===\n";
  printer.Print(std::cout);
  std::cout << "paper reference: ExplainTI-GE 0.934/0.910/0.959 weighted-ish "
               "top block; SelfExplain-Global 0.139/0.019/0.009; Saliency "
               "0.084/0.019/0.320 (weighted).\n";
  return 0;
}
