// Measures the int8 quantized serving tier against the fp32 tier it
// shadows, and emits BENCH_quantized.json for the ci/check_bench.py
// quantized gate:
//
//   * raw GEMM throughput: the register-blocked fp32 ServingGemm vs the
//     int8 QuantizeRowsInt8 + ServingGemmInt8 pipeline on a 256^3
//     problem (activation quantization is charged to the int8 side —
//     it is paid on every serving call);
//   * end-to-end Predict/Explain p50/p99 on two sessions over identical
//     trained weights, one EXPLAINTI_PRECISION=fp32 and one =int8;
//   * weight-memory bytes for the armed layers in both precisions;
//   * macro-F1 on the held-out test split of BOTH synthetic corpora
//     (wiki + git), fp32 vs int8, after a short Fit — the accuracy cost
//     of post-training quantization on real task heads;
//   * top-evidence-token agreement on the shared golden fixture
//     (tests/golden_evidence.h), the same samples and window count the
//     tier-1 plan-verify tests pin;
//   * steady-state allocation behaviour of the raw int8 plan executor
//     (must be exactly zero, like the fp32 executor).
//
// The binary hard-fails if the int8 policy does not arm (the tier
// falling closed to fp32 would silently turn every comparison into
// fp32-vs-fp32) or if the warmed-up int8 executor touches the heap.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/explain_ti_model.h"
#include "core/inference_plan.h"
#include "core/inference_session.h"
#include "data/git_generator.h"
#include "data/wiki_generator.h"
#include "eval/f1_metrics.h"
#include "tensor/plan_kernels.h"
#include "tensor/quant.h"
#include "tensor/workspace.h"
#include "tests/golden_evidence.h"
#include "util/alloc_counter.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace explainti;

namespace {

double Percentile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const size_t idx =
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct LatencyStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

LatencyStats Stats(const std::vector<double>& lat_us) {
  return {Percentile(lat_us, 0.50), Percentile(lat_us, 0.99)};
}

// -- Raw GEMM throughput --------------------------------------------------

struct GemmResult {
  double fp32_p50_ms = 0.0;
  double int8_p50_ms = 0.0;
  double fp32_gflops = 0.0;
  double int8_gflops = 0.0;
  double speedup = 0.0;
};

GemmResult BenchGemm(int64_t m, int64_t k, int64_t n) {
  std::mt19937 rng(1234);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> c(static_cast<size_t>(m * n));
  for (float& v : a) v = dist(rng);
  for (float& v : b) v = dist(rng);

  const tensor::QuantizedMatrix wq = tensor::QuantizeWeightMatrix(b.data(), k, n);
  std::vector<int8_t> aq(static_cast<size_t>(m * k));
  std::vector<float> a_scales(static_cast<size_t>(m));
  std::vector<int32_t> a_zps(static_cast<size_t>(m));

  auto run_fp32 = [&]() {
    tensor::ZeroRows(c.data(), n, m, n);
    tensor::ServingGemm(a.data(), k, b.data(), n, /*trans_b=*/false, c.data(),
                        n, m, k, n);
  };
  // The activation quantization pass is part of the int8 cost: serving
  // pays it per GEMM, so the throughput claim must include it.
  auto run_int8 = [&]() {
    tensor::QuantizeRowsInt8(a.data(), k, m, k, aq.data(), a_scales.data(),
                             a_zps.data());
    tensor::ServingGemmInt8(aq.data(), a_scales.data(), a_zps.data(),
                            wq.data.data(), wq.params.scales.data(),
                            wq.col_sums.data(), c.data(), n, m, k, n);
  };

  const int kReps = 40;
  for (int r = 0; r < 3; ++r) {
    run_fp32();
    run_int8();
  }
  std::vector<double> fp32_ms, int8_ms;
  for (int r = 0; r < kReps; ++r) {
    util::WallTimer t1;
    run_fp32();
    fp32_ms.push_back(t1.ElapsedSeconds() * 1e3);
    util::WallTimer t2;
    run_int8();
    int8_ms.push_back(t2.ElapsedSeconds() * 1e3);
  }
  GemmResult result;
  result.fp32_p50_ms = Percentile(fp32_ms, 0.50);
  result.int8_p50_ms = Percentile(int8_ms, 0.50);
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  result.fp32_gflops = flops / (result.fp32_p50_ms * 1e6);
  result.int8_gflops = flops / (result.int8_p50_ms * 1e6);
  result.speedup = result.fp32_p50_ms / result.int8_p50_ms;
  return result;
}

// -- Trained fp32 / int8 model pair over identical weights ----------------

struct ModelPair {
  std::unique_ptr<core::ExplainTiModel> fp32;
  std::unique_ptr<core::ExplainTiModel> int8;
};

// Trains an fp32 model briefly, checkpoints it, and loads the SAME
// weights into a model whose session policy is int8 — the PTQ deployment
// flow (train fp32, quantize at load).
ModelPair MakeTrainedPair(const core::ExplainTiConfig& config,
                          const data::TableCorpus& corpus,
                          const std::string& ckpt_path) {
  ModelPair pair;
  unsetenv("EXPLAINTI_PRECISION");
  pair.fp32 = std::make_unique<core::ExplainTiModel>(config, corpus);
  pair.fp32->Fit();
  CHECK(pair.fp32->SaveWeights(ckpt_path).ok())
      << "cannot checkpoint trained weights to " << ckpt_path;
  setenv("EXPLAINTI_PRECISION", "int8", 1);
  pair.int8 = std::make_unique<core::ExplainTiModel>(config, corpus);
  unsetenv("EXPLAINTI_PRECISION");
  CHECK(pair.int8->LoadWeights(ckpt_path).ok())
      << "cannot load trained weights from " << ckpt_path;
  const core::InferenceSession& qs = pair.int8->session();
  CHECK_EQ(std::strcmp(qs.served_precision(), "int8"), 0)
      << "int8 policy fell back to " << qs.served_precision() << ": "
      << qs.precision_status().message();
  return pair;
}

struct F1Row {
  const char* corpus;
  const char* task;
  double fp32_macro;
  double int8_macro;
};

void EvalPair(const ModelPair& pair, const char* corpus,
              std::vector<F1Row>* rows) {
  for (core::TaskKind kind : {core::TaskKind::kType, core::TaskKind::kRelation}) {
    if (!pair.fp32->HasTask(kind)) continue;  // Git tables have no relation task.
    const eval::F1Scores f = pair.fp32->Evaluate(kind, data::SplitPart::kTest);
    const eval::F1Scores q = pair.int8->Evaluate(kind, data::SplitPart::kTest);
    rows->push_back({corpus,
                     kind == core::TaskKind::kType ? "type" : "relation",
                     f.macro, q.macro});
  }
}

}  // namespace

int main() {
  util::SetGlobalThreadCount(1);  // Per-call latency, not batch throughput.

  // -- Raw GEMM tier ------------------------------------------------------
  const GemmResult gemm = BenchGemm(256, 256, 256);
  std::cerr << "[quantized] GEMM 256^3: fp32 " << gemm.fp32_gflops
            << " GFLOP/s, int8 " << gemm.int8_gflops << " GFLOP/s ("
            << gemm.speedup << "x)\n";

  // -- Trained pairs on both synthetic corpora ----------------------------
  // Golden fixture corpus/config at the default epoch count: the F1 rows
  // are only meaningful if the fp32 baseline actually learned the tasks.
  const core::ExplainTiConfig config = explainti::testing::GoldenConfig();

  const data::TableCorpus wiki = explainti::testing::GoldenCorpus();
  data::GitTableOptions git_options;
  git_options.num_tables = 20;
  const data::TableCorpus git = data::GenerateGitTableCorpus(git_options);

  ModelPair wiki_pair = MakeTrainedPair(config, wiki, "bench_quantized_wiki.ckpt");
  ModelPair git_pair = MakeTrainedPair(config, git, "bench_quantized_git.ckpt");
  std::remove("bench_quantized_wiki.ckpt");
  std::remove("bench_quantized_git.ckpt");

  std::vector<F1Row> f1_rows;
  EvalPair(wiki_pair, "wiki", &f1_rows);
  EvalPair(git_pair, "git", &f1_rows);
  double max_f1_delta = 0.0;
  for (const F1Row& row : f1_rows) {
    max_f1_delta =
        std::max(max_f1_delta, std::abs(row.fp32_macro - row.int8_macro));
    std::cerr << "[quantized] F1 " << row.corpus << "/" << row.task
              << ": fp32 macro " << row.fp32_macro << " int8 macro "
              << row.int8_macro << "\n";
  }

  const core::InferenceSession& fs = wiki_pair.fp32->session();
  const core::InferenceSession& qs = wiki_pair.int8->session();

  // -- Golden evidence + prediction agreement (shared fixture) ------------
  double evidence_total = 0.0;
  int agree = 0, total = 0;
  for (core::TaskKind kind :
       {core::TaskKind::kType, core::TaskKind::kRelation}) {
    evidence_total += explainti::testing::MeanEvidenceAgreement(
        explainti::testing::GoldenEvidence(fs, kind),
        explainti::testing::GoldenEvidence(qs, kind));
    for (int id : explainti::testing::GoldenSampleIds(fs.task_data(kind))) {
      agree += fs.Predict(kind, id) == qs.Predict(kind, id) ? 1 : 0;
      ++total;
    }
  }
  const double evidence_agreement = evidence_total / 2.0;
  const double prediction_agreement =
      static_cast<double>(agree) / static_cast<double>(total);
  std::cerr << "[quantized] golden evidence agreement " << evidence_agreement
            << ", prediction agreement " << prediction_agreement << "\n";

  // -- End-to-end Predict/Explain latency, fp32 vs int8 -------------------
  const std::vector<int> ids =
      explainti::testing::GoldenSampleIds(fs.task_data(core::TaskKind::kType));
  const int kRounds = 40;
  std::vector<double> fp32_predict, int8_predict, fp32_explain, int8_explain;
  for (int id : ids) {  // Warm-up pass: arenas reach steady state.
    fs.Predict(core::TaskKind::kType, id);
    qs.Predict(core::TaskKind::kType, id);
    fs.Explain(core::TaskKind::kType, id);
    qs.Explain(core::TaskKind::kType, id);
  }
  // Interleave paths round by round so background-load drift on this
  // container spreads evenly instead of biasing one path.
  for (int r = 0; r < kRounds; ++r) {
    for (int id : ids) {
      util::WallTimer t1;
      fs.Predict(core::TaskKind::kType, id);
      fp32_predict.push_back(t1.ElapsedSeconds() * 1e6);
      util::WallTimer t2;
      qs.Predict(core::TaskKind::kType, id);
      int8_predict.push_back(t2.ElapsedSeconds() * 1e6);
    }
    for (int id : ids) {
      util::WallTimer t1;
      fs.Explain(core::TaskKind::kType, id);
      fp32_explain.push_back(t1.ElapsedSeconds() * 1e6);
      util::WallTimer t2;
      qs.Explain(core::TaskKind::kType, id);
      int8_explain.push_back(t2.ElapsedSeconds() * 1e6);
    }
  }
  const LatencyStats fp = Stats(fp32_predict), qp = Stats(int8_predict);
  const LatencyStats fe = Stats(fp32_explain), qe = Stats(int8_explain);
  std::cerr << "[quantized] Predict p50 fp32 " << fp.p50_us << "us int8 "
            << qp.p50_us << "us; Explain p50 fp32 " << fe.p50_us << "us int8 "
            << qe.p50_us << "us\n";

  // -- Weight memory + tier shape ------------------------------------------
  const core::InferenceSession::PrecisionStats stats = qs.precision_stats();
  CHECK_GT(stats.weight_bytes_int8, 0);
  const double reduction = static_cast<double>(stats.weight_bytes_fp32) /
                           static_cast<double>(stats.weight_bytes_int8);
  std::cerr << "[quantized] weight memory " << stats.weight_bytes_fp32
            << " B fp32 -> " << stats.weight_bytes_int8 << " B int8 ("
            << reduction << "x)\n";

  // -- Raw int8 plan executor: zero allocations after warm-up -------------
  double executor_allocs = 0.0;
  int64_t executor_misses = 0;
  {
    const core::InferencePlan* plan =
        qs.PlanFor(core::TaskKind::kType, ids.front());
    CHECK(plan != nullptr);
    CHECK_GT(plan->int8_gemms, 0) << "int8 session compiled an fp32 plan";
    const core::TaskSample& sample =
        qs.task_data(core::TaskKind::kType)
            .samples[static_cast<size_t>(ids.front())];
    std::vector<float> encoder_out(
        static_cast<size_t>(plan->seq_len * plan->d_model));
    std::vector<float> logits(
        static_cast<size_t>(std::max<int64_t>(plan->num_labels, 1)));
    core::PlanRun run;
    run.token_ids = sample.seq.ids.data();
    run.segment_ids = plan->has_segments ? sample.seq.segments.data() : nullptr;
    run.encoder_out = encoder_out.data();
    run.encoder_out_rows = plan->seq_len;
    run.logits = plan->logits_off >= 0 ? logits.data() : nullptr;
    core::RunPlan(*plan, run);  // Warm-up.
    core::RunPlan(*plan, run);
    const int kExecRounds = 200;
    const tensor::WorkspaceStats ws_before = tensor::ThisThreadWorkspaceStats();
    const util::AllocCounts heap_before = util::ThisThreadAllocCounts();
    for (int r = 0; r < kExecRounds; ++r) core::RunPlan(*plan, run);
    const util::AllocCounts heap_after = util::ThisThreadAllocCounts();
    const tensor::WorkspaceStats ws_after = tensor::ThisThreadWorkspaceStats();
    executor_allocs =
        static_cast<double>(heap_after.allocations - heap_before.allocations) /
        static_cast<double>(kExecRounds);
    executor_misses = static_cast<int64_t>(ws_after.buffer_misses -
                                           ws_before.buffer_misses);
    CHECK_EQ(heap_after.allocations, heap_before.allocations)
        << "warmed-up int8 RunPlan allocated on the heap";
    CHECK_EQ(executor_misses, 0)
        << "warmed-up int8 RunPlan missed the workspace buffer pool";
  }

  // -- JSON -----------------------------------------------------------------
  std::ofstream json("BENCH_quantized.json");
  CHECK(json.good()) << "cannot open BENCH_quantized.json";
  json << "{\n  " << bench::HostMetaJson() << ",\n  \"quantized\": {\n"
       << "    \"gemm\": {\"m\": 256, \"k\": 256, \"n\": 256"
       << ", \"fp32_p50_ms\": " << gemm.fp32_p50_ms
       << ", \"int8_p50_ms\": " << gemm.int8_p50_ms
       << ", \"fp32_gflops\": " << gemm.fp32_gflops
       << ", \"int8_gflops\": " << gemm.int8_gflops
       << ", \"int8_speedup\": " << gemm.speedup << "},\n"
       << "    \"e2e\": {\n"
       << "      \"predict\": {\"fp32_p50_us\": " << fp.p50_us
       << ", \"fp32_p99_us\": " << fp.p99_us
       << ", \"int8_p50_us\": " << qp.p50_us
       << ", \"int8_p99_us\": " << qp.p99_us << "},\n"
       << "      \"explain\": {\"fp32_p50_us\": " << fe.p50_us
       << ", \"fp32_p99_us\": " << fe.p99_us
       << ", \"int8_p50_us\": " << qe.p50_us
       << ", \"int8_p99_us\": " << qe.p99_us << "}\n    },\n"
       << "    \"weight_memory\": {\"fp32_bytes\": " << stats.weight_bytes_fp32
       << ", \"int8_bytes\": " << stats.weight_bytes_int8
       << ", \"reduction\": " << reduction << "},\n"
       << "    \"f1\": [\n";
  for (size_t i = 0; i < f1_rows.size(); ++i) {
    const F1Row& row = f1_rows[i];
    json << "      {\"corpus\": \"" << row.corpus << "\", \"task\": \""
         << row.task << "\", \"fp32_macro\": " << row.fp32_macro
         << ", \"int8_macro\": " << row.int8_macro << "}"
         << (i + 1 < f1_rows.size() ? ",\n" : "\n");
  }
  json << "    ],\n    \"max_f1_delta\": " << max_f1_delta
       << ",\n    \"evidence_agreement\": " << evidence_agreement
       << ",\n    \"prediction_agreement\": " << prediction_agreement
       << ",\n    \"served_precision\": \"" << qs.served_precision() << "\""
       << ",\n    \"int8_layers\": " << stats.int8_layers
       << ",\n    \"fp32_fallback_layers\": " << stats.fp32_fallback_layers
       << ",\n    \"plan_executor_int8\": {\"allocations_per_call\": "
       << executor_allocs
       << ", \"steady_state_arena_misses\": " << executor_misses
       << "}\n  }\n}\n";
  std::cerr << "[quantized] wrote BENCH_quantized.json\n";
  return 0;
}
