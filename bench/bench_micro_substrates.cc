// Substrate micro-benchmarks (google-benchmark): the building blocks the
// reproduction runs on — tensor ops, encoder forward/backward, HNSW vs
// exact retrieval (the ablation behind GE's O(log N) claim), tokenizer,
// serialisation, and graph neighbour sampling.

#include <benchmark/benchmark.h>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "data/wiki_generator.h"
#include "graph/column_graph.h"
#include "nn/encoder.h"
#include "tensor/tensor_ops.h"
#include "text/serializer.h"
#include "text/tokenizer.h"
#include "util/rng.h"

using namespace explainti;

namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, rng, 1.0f);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxBackward(benchmark::State& state) {
  util::Rng rng(2);
  for (auto _ : state) {
    tensor::Tensor x = tensor::Tensor::Randn({40, 40}, rng, 1.0f);
    x.set_requires_grad(true);
    tensor::Tensor loss = tensor::Mean(tensor::Softmax(x));
    loss.Backward();
    benchmark::DoNotOptimize(x.grad());
  }
}
BENCHMARK(BM_SoftmaxBackward);

void BM_EncoderForward(benchmark::State& state) {
  util::Rng rng(3);
  nn::TransformerConfig config;
  config.vocab_size = 2000;
  nn::TransformerEncoder encoder(config, rng);
  std::vector<int> ids(40);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int>(rng.UniformInt(2000));
  }
  std::vector<int> segments(40, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encoder.Forward(ids, segments, /*training=*/false, rng));
  }
}
BENCHMARK(BM_EncoderForward);

void BM_EncoderTrainStep(benchmark::State& state) {
  util::Rng rng(4);
  nn::TransformerConfig config;
  config.vocab_size = 2000;
  nn::TransformerEncoder encoder(config, rng);
  std::vector<int> ids(40);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int>(rng.UniformInt(2000));
  }
  std::vector<int> segments(40, 0);
  for (auto _ : state) {
    tensor::Tensor out = encoder.Forward(ids, segments, /*training=*/true,
                                         rng);
    tensor::Tensor loss = tensor::Mean(out);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_EncoderTrainStep);

void PopulateIndex(ann::VectorIndex* index, int n, int dim, uint64_t seed) {
  util::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<float> v(static_cast<size_t>(dim));
    for (float& x : v) x = static_cast<float>(rng.Normal());
    index->Add(i, v);
  }
}

void BM_HnswBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ann::HnswIndex index;
    PopulateIndex(&index, n, 64, 5);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HnswBuild)->Arg(1000);

void BM_HnswSearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ann::HnswIndex index;
  PopulateIndex(&index, n, 64, 6);
  util::Rng rng(7);
  std::vector<float> query(64);
  for (float& x : query) x = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(query, 10));
  }
}
BENCHMARK(BM_HnswSearch)->Arg(1000)->Arg(10000);

void BM_FlatSearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ann::FlatIndex index;
  PopulateIndex(&index, n, 64, 6);
  util::Rng rng(7);
  std::vector<float> query(64);
  for (float& x : query) x = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(query, 10));
  }
}
BENCHMARK(BM_FlatSearch)->Arg(1000)->Arg(10000);

void BM_Tokenizer(benchmark::State& state) {
  auto vocab = std::make_shared<text::Vocab>();
  for (const char* word : {"nba", "draft", "player", "team", "lakers",
                           "celtics", "title", "header", "cell"}) {
    vocab->AddToken(word);
  }
  text::WordPieceTokenizer tokenizer(vocab);
  const std::string input =
      "title 1990 nba draft header player cell james smith mary jones";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(input));
  }
}
BENCHMARK(BM_Tokenizer);

void BM_GraphSampling(benchmark::State& state) {
  data::WikiTableOptions options;
  options.num_tables = 120;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);
  graph::ColumnGraph graph;
  for (size_t i = 0; i < corpus.type_samples.size(); ++i) {
    const data::TypeSample& s = corpus.type_samples[i];
    graph.AddSample(static_cast<int>(i),
                    corpus.tables[static_cast<size_t>(s.table_index)].title,
                    corpus.tables[static_cast<size_t>(s.table_index)]
                        .columns[static_cast<size_t>(s.column_index)]
                        .header);
  }
  util::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.SampleNeighbors(
        static_cast<int>(rng.UniformInt(graph.num_samples())), 16, rng));
  }
}
BENCHMARK(BM_GraphSampling);

void BM_Serialization(benchmark::State& state) {
  data::WikiTableOptions options;
  options.num_tables = 8;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);
  auto vocab = std::make_shared<text::Vocab>();
  text::WordPieceTokenizer tokenizer(vocab);
  text::SequenceSerializer serializer(&tokenizer, 40);
  for (auto _ : state) {
    for (const data::TypeSample& sample : corpus.type_samples) {
      benchmark::DoNotOptimize(
          serializer.SerializeColumn(corpus.ColumnTextOf(sample)));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.type_samples.size()));
}
BENCHMARK(BM_Serialization);

}  // namespace

BENCHMARK_MAIN();
