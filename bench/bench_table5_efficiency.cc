// Reproduces paper Table V: efficiency analysis — the training and test
// time each explainable module (LE, GE, SE) adds on top of the base
// model, for Wiki-Type, Wiki-Relation and Git-Type.
//
// Expected shape: LE and SE barely increase training time; GE is the
// expensive module at train time (embedding-store retrieval); every
// module adds some test time; all test-time overheads stay within
// seconds.

#include <iostream>

#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace explainti;

namespace {

struct VariantTimes {
  double wiki_type_train = 0.0;
  double wiki_type_test = 0.0;
  double wiki_rel_train = 0.0;
  double wiki_rel_test = 0.0;
  double git_type_train = 0.0;
  double git_type_test = 0.0;
};

/// Times Explain() over the task's test split (prediction + explanation,
/// i.e. the paper's "test" column).
double TimeTestPass(const core::ExplainTiModel& model, core::TaskKind kind) {
  const core::TaskData& task = model.task_data(kind);
  util::WallTimer timer;
  for (int id : task.test_ids) {
    const core::Explanation z = model.Explain(kind, id);
    (void)z;
  }
  return timer.ElapsedSeconds();
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  std::cerr << "[table5] scale=" << scale.name << "\n";
  const data::TableCorpus wiki = bench::MakeWikiCorpus(scale);
  const data::TableCorpus git = bench::MakeGitCorpus(scale);

  struct Variant {
    std::string name;
    bool le, ge, se;
  };
  const std::vector<Variant> variants = {
      {"Base", false, false, false},  {"Base+LE", true, false, false},
      {"Base+GE", false, true, false}, {"Base+SE", false, false, true},
      {"ExplainTI", true, true, true},
  };

  util::TablePrinter printer({"Method", "WikiType train", "WikiType test",
                              "WikiRel train", "WikiRel test",
                              "GitType train", "GitType test"});

  for (const Variant& variant : variants) {
    core::ExplainTiConfig config = bench::MakeExplainTiConfig(scale, "bert");
    config.use_local = variant.le;
    config.use_global = variant.ge;
    config.use_structural = variant.se;

    VariantTimes times;
    {
      core::ExplainTiModel model(config, wiki);
      const core::FitStats stats = model.Fit();
      times.wiki_type_train = stats.type_train_seconds;
      times.wiki_rel_train = stats.relation_train_seconds;
      times.wiki_type_test = TimeTestPass(model, core::TaskKind::kType);
      times.wiki_rel_test = TimeTestPass(model, core::TaskKind::kRelation);
    }
    {
      core::ExplainTiModel model(config, git);
      const core::FitStats stats = model.Fit();
      times.git_type_train = stats.type_train_seconds;
      times.git_type_test = TimeTestPass(model, core::TaskKind::kType);
    }

    printer.AddRow({variant.name, bench::F1(times.wiki_type_train) + "s",
                    bench::F1(times.wiki_type_test) + "s",
                    bench::F1(times.wiki_rel_train) + "s",
                    bench::F1(times.wiki_rel_test) + "s",
                    bench::F1(times.git_type_train) + "s",
                    bench::F1(times.git_type_test) + "s"});
    std::cerr << "[table5] " << variant.name << " done\n";
  }

  std::cout << "=== Table V: efficiency analysis (train = fine-tuning time, "
               "test = predict+explain over the test split; scale: "
            << scale.name << ") ===\n";
  printer.Print(std::cout);
  std::cout << "paper reference (A100): Base 354m/9.5s Wiki-Type; +LE and "
               "+SE ~free at train time; +GE 577m (store retrieval); full "
               "ExplainTI 582m/31s.\n";
  return 0;
}
