// Measures thread-pool scaling on the three parallelised hot paths —
// matmul, encoder forward, HNSW index build — at 1/2/4 threads, and
// emits BENCH_parallel.json with absolute times and speedups relative to
// the single-threaded run.
//
// Besides timing, the run asserts that every workload's result checksum
// is bit-identical across thread counts: scaling must never change
// numerics (the determinism contract in DESIGN.md "Execution model").
// Note speedups depend on the machine; on a single-core container every
// configuration measures ~1.0x and the JSON records exactly that.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "ann/hnsw_index.h"
#include "nn/encoder.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace explainti;

namespace {

constexpr int kThreadCounts[] = {1, 2, 4};

struct Workload {
  std::string name;
  // Runs one iteration and returns a result checksum (bitwise over
  // outputs, so any numeric drift across thread counts is caught).
  double (*run)();
  int reps;
};

double ChecksumFloats(const float* data, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    uint32_t bits;
    std::memcpy(&bits, data + i, sizeof(bits));
    sum += static_cast<double>(bits % 9973);
  }
  return sum;
}

double RunMatMul() {
  const int64_t m = 192, k = 192, n = 192;
  util::Rng rng(11);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (float& v : a) v = static_cast<float>(rng.Normal());
  for (float& v : b) v = static_cast<float>(rng.Normal());
  tensor::Tensor ta = tensor::Tensor::FromVector({m, k}, a);
  tensor::Tensor tb = tensor::Tensor::FromVector({k, n}, b);
  tensor::Tensor tc = tensor::MatMul(ta, tb);
  return ChecksumFloats(tc.data(), tc.size());
}

double RunEncoderForward() {
  nn::TransformerConfig config;
  config.vocab_size = 512;
  config.d_model = 64;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 128;
  config.max_len = 64;
  util::Rng init_rng(21);
  nn::TransformerEncoder encoder(config, init_rng);
  std::vector<int> ids, segments;
  util::Rng data_rng(22);
  for (int i = 0; i < 48; ++i) {
    ids.push_back(static_cast<int>(5 + data_rng.UniformInt(500)));
    segments.push_back(i < 24 ? 0 : 1);
  }
  util::Rng fwd_rng(23);
  tensor::Tensor out =
      encoder.Forward(ids, segments, /*training=*/false, fwd_rng);
  return ChecksumFloats(out.data(), out.size());
}

double RunIndexBuild() {
  ann::HnswOptions options;
  options.seed = 31;
  ann::HnswIndex index(options);
  util::Rng rng(32);
  const int64_t dim = 64;
  std::vector<float> v(static_cast<size_t>(dim));
  for (int i = 0; i < 300; ++i) {
    for (float& x : v) x = static_cast<float>(rng.Normal());
    index.Add(i, v);
  }
  // Checksum over search results so build structure differences surface.
  double checksum = 0.0;
  for (float& x : v) x = static_cast<float>(rng.Normal());
  for (const ann::SearchResult& r : index.Search(v, 10)) {
    checksum += static_cast<double>(r.id) * 1e3 +
                static_cast<double>(r.similarity);
  }
  return checksum;
}

}  // namespace

int main() {
  const Workload workloads[] = {
      {"matmul_192", &RunMatMul, 8},
      {"encoder_forward", &RunEncoderForward, 5},
      {"hnsw_index_build", &RunIndexBuild, 3},
  };

  std::ofstream json("BENCH_parallel.json");
  CHECK(json.good()) << "cannot open BENCH_parallel.json";
  json << "{\n  " << explainti::bench::HostMetaJson()
       << ",\n  \"hardware_threads\": "
       << std::thread::hardware_concurrency() << ",\n  \"workloads\": [\n";

  bool first_workload = true;
  for (const Workload& w : workloads) {
    double baseline_seconds = 0.0;
    double baseline_checksum = 0.0;
    if (!first_workload) json << ",\n";
    first_workload = false;
    json << "    {\"name\": \"" << w.name << "\", \"runs\": [";
    for (size_t t = 0; t < sizeof(kThreadCounts) / sizeof(int); ++t) {
      const int threads = kThreadCounts[t];
      util::SetGlobalThreadCount(threads);
      w.run();  // Warm-up (allocator, caches).
      double best = 1e100;
      double checksum = 0.0;
      for (int rep = 0; rep < w.reps; ++rep) {
        util::WallTimer timer;
        checksum = w.run();
        best = std::min(best, timer.ElapsedSeconds());
      }
      if (threads == 1) {
        baseline_seconds = best;
        baseline_checksum = checksum;
      } else {
        // Determinism gate: parallel runs must reproduce the serial
        // result exactly.
        CHECK_EQ(checksum, baseline_checksum)
            << w.name << " checksum drifted at " << threads << " threads";
      }
      const double speedup = baseline_seconds / best;
      std::cerr << "[parallel] " << w.name << " threads=" << threads
                << " best=" << best << "s speedup=" << speedup << "x\n";
      if (t != 0) json << ", ";
      json << "{\"threads\": " << threads << ", \"seconds\": " << best
           << ", \"speedup\": " << speedup << "}";
    }
    json << "]}";
  }
  json << "\n  ]\n}\n";
  std::cerr << "[parallel] wrote BENCH_parallel.json\n";
  return 0;
}
