// Reproduces paper Table III: table-interpretation performance of every
// baseline, ExplainTI with both base encoders, and the four ablations
// (w/o LE, w/o GE, w/o SE, w PP) — on Wiki-Type, Wiki-Relation and
// Git-Type with F1-micro / F1-macro / F1-weighted.
//
// Expected shape (paper): Sherlock/Sato < TaBERT < TURL/Doduo/TCN <
// ExplainTI; TCN collapses on GitTable; w/o SE costs ~1% F1 on WikiTable;
// w/o LE and w/o GE are nearly free (their role is explainability).

#include <functional>
#include <iostream>
#include <memory>
#include <optional>

#include "baselines/doduo.h"
#include "baselines/feature_mlp.h"
#include "baselines/self_explain.h"
#include "baselines/tabert.h"
#include "baselines/tcn.h"
#include "baselines/turl.h"
#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace explainti;

namespace {

struct RowScores {
  std::optional<eval::F1Scores> wiki_type;
  std::optional<eval::F1Scores> wiki_rel;
  std::optional<eval::F1Scores> git_type;
};

void AddRow(util::TablePrinter& printer, const std::string& method,
            const RowScores& scores) {
  auto cell = [](const std::optional<eval::F1Scores>& f1, int which) {
    if (!f1.has_value()) return std::string("-");
    const double v = which == 0 ? f1->micro : which == 1 ? f1->macro
                                                         : f1->weighted;
    return bench::F3(v);
  };
  printer.AddRow({method, cell(scores.wiki_type, 0), cell(scores.wiki_type, 1),
                  cell(scores.wiki_type, 2), cell(scores.wiki_rel, 0),
                  cell(scores.wiki_rel, 1), cell(scores.wiki_rel, 2),
                  cell(scores.git_type, 0), cell(scores.git_type, 1),
                  cell(scores.git_type, 2)});
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  std::cerr << "[table3] scale=" << scale.name
            << " (set EXPLAINTI_BENCH_SCALE=full for larger runs)\n";
  const data::TableCorpus wiki = bench::MakeWikiCorpus(scale);
  const data::TableCorpus git = bench::MakeGitCorpus(scale);

  util::TablePrinter printer(
      {"Method", "WikiType u", "WikiType M", "WikiType w", "WikiRel u",
       "WikiRel M", "WikiRel w", "GitType u", "GitType M", "GitType w"});

  util::WallTimer total_timer;

  // -- Baselines ----------------------------------------------------------
  using BaselineFactory =
      std::function<std::unique_ptr<baselines::TableInterpreter>()>;
  const std::vector<std::pair<std::string, BaselineFactory>> baseline_rows = {
      {"Sherlock", [] { return baselines::MakeSherlock(21); }},
      {"Sato", [] { return baselines::MakeSato(22); }},
      {"TaBERT",
       [&] { return baselines::MakeTaBert(bench::MakeBaselineConfig(scale, "bert")); }},
      {"TURL",
       [&] { return baselines::MakeTurl(bench::MakeBaselineConfig(scale, "bert")); }},
      {"Doduo",
       [&] { return baselines::MakeDoduo(bench::MakeBaselineConfig(scale, "bert")); }},
      {"TCN",
       [&] { return baselines::MakeTcn(bench::MakeBaselineConfig(scale, "bert")); }},
      {"SelfExplain",
       [&] {
         return baselines::MakeSelfExplain(
             bench::MakeBaselineConfig(scale, "bert"));
       }},
  };

  for (const auto& [name, factory] : baseline_rows) {
    util::WallTimer timer;
    RowScores scores;
    {
      std::unique_ptr<baselines::TableInterpreter> model = factory();
      model->Fit(wiki);
      scores.wiki_type = baselines::EvaluateInterpreter(
          *model, wiki, core::TaskKind::kType, data::SplitPart::kTest);
      if (model->HasTask(core::TaskKind::kRelation)) {
        scores.wiki_rel = baselines::EvaluateInterpreter(
            *model, wiki, core::TaskKind::kRelation, data::SplitPart::kTest);
      }
    }
    {
      std::unique_ptr<baselines::TableInterpreter> model = factory();
      model->Fit(git);
      scores.git_type = baselines::EvaluateInterpreter(
          *model, git, core::TaskKind::kType, data::SplitPart::kTest);
    }
    AddRow(printer, name, scores);
    std::cerr << "[table3] " << name << " done in "
              << bench::F1(timer.ElapsedSeconds()) << "s\n";
  }
  printer.AddSeparator();

  // -- ExplainTI and its ablations, for both base encoders -----------------
  struct Variant {
    std::string suffix;
    std::function<void(core::ExplainTiConfig&)> apply;
  };
  const std::vector<Variant> variants = {
      {"", [](core::ExplainTiConfig&) {}},
      {" w/o LE", [](core::ExplainTiConfig& c) { c.use_local = false; }},
      {" w/o GE", [](core::ExplainTiConfig& c) { c.use_global = false; }},
      {" w/o SE", [](core::ExplainTiConfig& c) { c.use_structural = false; }},
      {" w PP", [](core::ExplainTiConfig& c) { c.dedup_cells = true; }},
  };

  for (const std::string base_model : {"bert", "roberta"}) {
    const std::string display =
        base_model == "bert" ? "ExplainTI-BERT" : "ExplainTI-RoBERTa";
    for (const Variant& variant : variants) {
      util::WallTimer timer;
      core::ExplainTiConfig config =
          bench::MakeExplainTiConfig(scale, base_model);
      variant.apply(config);

      RowScores scores;
      {
        core::ExplainTiModel model(config, wiki);
        model.Fit();
        scores.wiki_type = model.Evaluate(core::TaskKind::kType,
                                          data::SplitPart::kTest);
        scores.wiki_rel = model.Evaluate(core::TaskKind::kRelation,
                                         data::SplitPart::kTest);
      }
      {
        core::ExplainTiModel model(config, git);
        model.Fit();
        scores.git_type = model.Evaluate(core::TaskKind::kType,
                                         data::SplitPart::kTest);
      }
      AddRow(printer, display + variant.suffix, scores);
      std::cerr << "[table3] " << display << variant.suffix << " done in "
                << bench::F1(timer.ElapsedSeconds()) << "s\n";
    }
    printer.AddSeparator();
  }

  std::cout << "=== Table III: table interpretation performance (test split, "
               "scale: "
            << scale.name << ") ===\n";
  printer.Print(std::cout);
  std::cout << "total wall time: " << bench::F1(total_timer.ElapsedSeconds())
            << "s\n"
            << "paper reference (A100, real corpora): ExplainTI-BERT "
               "0.944/0.815/0.944 Wiki-Type, 0.941/0.891/0.941 Wiki-Rel, "
               "0.982/0.863/0.980 Git-Type; best baseline TCN 0.928 "
               "Wiki-Type micro but 0.723 on Git-Type.\n";
  return 0;
}
