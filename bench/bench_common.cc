#include "bench/bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "util/string_util.h"

namespace explainti::bench {

Scale GetScale() {
  const char* env = std::getenv("EXPLAINTI_BENCH_SCALE");
  const std::string requested = env == nullptr ? "quick" : env;
  if (requested == "full") {
    return Scale{"full", /*wiki_tables=*/400, /*git_tables=*/220,
                 /*epochs=*/16, /*pretrain_epochs=*/3,
                 /*sweep_tables=*/200, /*sweep_epochs=*/10};
  }
  return Scale{"quick", /*wiki_tables=*/240, /*git_tables=*/130,
               /*epochs=*/10, /*pretrain_epochs=*/2,
               /*sweep_tables=*/120, /*sweep_epochs=*/6};
}

data::TableCorpus MakeWikiCorpus(const Scale& scale) {
  data::WikiTableOptions options;
  options.num_tables = scale.wiki_tables;
  return data::GenerateWikiTableCorpus(options);
}

data::TableCorpus MakeGitCorpus(const Scale& scale) {
  data::GitTableOptions options;
  options.num_tables = scale.git_tables;
  return data::GenerateGitTableCorpus(options);
}

core::ExplainTiConfig MakeExplainTiConfig(const Scale& scale,
                                          const std::string& base_model) {
  core::ExplainTiConfig config;
  config.base_model = base_model;
  config.epochs = scale.epochs;
  config.pretrain_epochs = scale.pretrain_epochs;
  return config;
}

baselines::TransformerBaselineConfig MakeBaselineConfig(
    const Scale& scale, const std::string& base_model) {
  baselines::TransformerBaselineConfig config;
  config.base_model = base_model;
  config.epochs = scale.epochs;
  config.pretrain_epochs = scale.pretrain_epochs;
  return config;
}

std::string F3(double value) { return util::FormatDouble(value, 3); }
std::string F1(double value) { return util::FormatDouble(value, 1); }

std::string HostMetaJson() {
// Stamped by bench/CMakeLists.txt from the configured build; the
// fallbacks only apply when the library is built outside that file.
#ifndef EXPLAINTI_BUILD_TYPE
#define EXPLAINTI_BUILD_TYPE "unknown"
#endif
#ifndef EXPLAINTI_BUILD_FLAGS
#define EXPLAINTI_BUILD_FLAGS ""
#endif
  std::ostringstream os;
  os << "\"host\": {\"hardware_threads\": "
     << std::max(1u, std::thread::hardware_concurrency())
     << ", \"build_type\": \"" << EXPLAINTI_BUILD_TYPE
     << "\", \"build_flags\": \"" << EXPLAINTI_BUILD_FLAGS
     << "\", \"compiler\": \"" << __VERSION__ << "\"}";
  return os.str();
}

eval::ExplanationDataset BuildExplanationDataset(
    const core::TaskData& task,
    const std::function<std::string(int)>& explain) {
  eval::ExplanationDataset dataset;
  dataset.num_labels = task.num_labels;
  dataset.multi_label = task.multi_label;
  for (int id : task.train_ids) {
    dataset.train_texts.push_back(explain(id));
    dataset.train_labels.push_back(
        task.samples[static_cast<size_t>(id)].labels);
  }
  for (int id : task.test_ids) {
    dataset.test_texts.push_back(explain(id));
    dataset.test_labels.push_back(
        task.samples[static_cast<size_t>(id)].labels);
  }
  return dataset;
}

}  // namespace explainti::bench
