// Reproduces paper Figure 7: sensitivity analysis on WikiTable —
//  (a,b) loss weights alpha/beta in {0.05..0.50};
//  (c,d) SE neighbour sample size r in {1..32};
//  (e,f) LE window size k in {2..10} (ExplainTI-LE sufficiency);
//  (g,h) top-K local explanations K in {1..10} (sufficiency, one model).
//
// Select a sweep with --sweep=alpha_beta|r|k|topk or run all by default.
// Sweeps use the reduced sweep scale (17 trainings total).
//
// Expected shape: F1 flat across alpha/beta; r rises then dips slightly
// (over-smoothing); LE sufficiency degrades slowly as k or K shrink.

#include <cstring>
#include <iostream>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace explainti;

namespace {

data::TableCorpus SweepCorpus(const bench::Scale& scale) {
  data::WikiTableOptions options;
  options.num_tables = scale.sweep_tables;
  return data::GenerateWikiTableCorpus(options);
}

core::ExplainTiConfig SweepConfig(const bench::Scale& scale) {
  core::ExplainTiConfig config = bench::MakeExplainTiConfig(scale, "bert");
  config.epochs = scale.sweep_epochs;
  return config;
}

void SweepAlphaBeta(const bench::Scale& scale,
                    const data::TableCorpus& corpus) {
  util::TablePrinter printer(
      {"alpha=beta", "Type F1w (a)", "Relation F1w (b)"});
  for (float weight : {0.05f, 0.10f, 0.15f, 0.20f, 0.25f, 0.50f}) {
    core::ExplainTiConfig config = SweepConfig(scale);
    config.alpha = weight;
    config.beta = weight;
    core::ExplainTiModel model(config, corpus);
    model.Fit();
    printer.AddRow(
        {util::FormatDouble(weight, 2),
         bench::F3(model.Evaluate(core::TaskKind::kType,
                                  data::SplitPart::kTest).weighted),
         bench::F3(model.Evaluate(core::TaskKind::kRelation,
                                  data::SplitPart::kTest).weighted)});
    std::cerr << "[fig7] alpha=beta=" << weight << " done\n";
  }
  std::cout << "--- Figure 7(a,b): sensitivity to loss weights ---\n";
  printer.Print(std::cout);
  std::cout << "paper: flat across all settings.\n\n";
}

void SweepSampleSize(const bench::Scale& scale,
                     const data::TableCorpus& corpus) {
  util::TablePrinter printer({"r", "Type F1w (c)", "Relation F1w (d)"});
  for (int r : {1, 2, 4, 8, 16, 32}) {
    core::ExplainTiConfig config = SweepConfig(scale);
    config.sample_size = r;
    core::ExplainTiModel model(config, corpus);
    model.Fit();
    printer.AddRow(
        {std::to_string(r),
         bench::F3(model.Evaluate(core::TaskKind::kType,
                                  data::SplitPart::kTest).weighted),
         bench::F3(model.Evaluate(core::TaskKind::kRelation,
                                  data::SplitPart::kTest).weighted)});
    std::cerr << "[fig7] r=" << r << " done\n";
  }
  std::cout << "--- Figure 7(c,d): sensitivity to SE sample size r ---\n";
  printer.Print(std::cout);
  std::cout << "paper: rises with r, then dips slightly past r=16 "
               "(over-smoothing).\n\n";
}

/// LE sufficiency of a trained model with top-`top_k` windows.
eval::F1Scores LeSufficiency(const core::ExplainTiModel& model,
                             core::TaskKind kind, int top_k) {
  const core::TaskData& task = model.task_data(kind);
  const eval::ExplanationDataset dataset = bench::BuildExplanationDataset(
      task, [&](int id) {
        const core::Explanation z = model.Explain(kind, id);
        std::vector<std::string> texts;
        for (size_t i = 0; i < z.local.size() &&
                           static_cast<int>(i) < top_k; ++i) {
          texts.push_back(z.local[i].text);
        }
        return util::Join(texts, " ");
      });
  return eval::EvaluateSufficiency(dataset);
}

void SweepWindowSize(const bench::Scale& scale,
                     const data::TableCorpus& corpus) {
  util::TablePrinter printer(
      {"k", "LE suff. Type F1w (e)", "LE suff. Relation F1w (f)"});
  for (int k : {2, 4, 6, 8, 10}) {
    core::ExplainTiConfig config = SweepConfig(scale);
    config.window_size = k;
    core::ExplainTiModel model(config, corpus);
    model.Fit();
    printer.AddRow(
        {std::to_string(k),
         bench::F3(LeSufficiency(model, core::TaskKind::kType, 3).weighted),
         bench::F3(
             LeSufficiency(model, core::TaskKind::kRelation, 3).weighted)});
    std::cerr << "[fig7] k=" << k << " done\n";
  }
  std::cout << "--- Figure 7(e,f): LE sufficiency vs window size k ---\n";
  printer.Print(std::cout);
  std::cout << "paper: drops slowly as k decreases (LE robust to k).\n\n";
}

void SweepTopK(const bench::Scale& scale, const data::TableCorpus& corpus) {
  // One trained model; only the number of explanation units varies.
  core::ExplainTiModel model(SweepConfig(scale), corpus);
  model.Fit();
  util::TablePrinter printer(
      {"K", "LE suff. Type F1w (g)", "LE suff. Relation F1w (h)"});
  for (int top_k : {1, 2, 3, 5, 10}) {
    printer.AddRow(
        {std::to_string(top_k),
         bench::F3(
             LeSufficiency(model, core::TaskKind::kType, top_k).weighted),
         bench::F3(LeSufficiency(model, core::TaskKind::kRelation, top_k)
                       .weighted)});
    std::cerr << "[fig7] K=" << top_k << " done\n";
  }
  std::cout << "--- Figure 7(g,h): LE sufficiency vs top-K ---\n";
  printer.Print(std::cout);
  std::cout << "paper: drops slowly as K decreases; top-1 remains "
               "competitive.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::GetScale();
  std::string sweep = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sweep=", 8) == 0) sweep = argv[i] + 8;
  }
  std::cerr << "[fig7] scale=" << scale.name << " sweep=" << sweep << "\n";
  const data::TableCorpus corpus = SweepCorpus(scale);

  std::cout << "=== Figure 7: sensitivity analysis (WikiTable, sweep scale: "
            << scale.sweep_tables << " tables, " << scale.sweep_epochs
            << " epochs) ===\n";
  if (sweep == "all" || sweep == "alpha_beta") SweepAlphaBeta(scale, corpus);
  if (sweep == "all" || sweep == "r") SweepSampleSize(scale, corpus);
  if (sweep == "all" || sweep == "k") SweepWindowSize(scale, corpus);
  if (sweep == "all" || sweep == "topk") SweepTopK(scale, corpus);
  return 0;
}
