// Measures the no-grad InferenceSession serving path against the
// tape-building eval path on the same weights: per-call Predict/Explain
// latency (p50/p99 over a few hundred calls), heap allocations per call,
// and the steady-state workspace-arena miss count. Emits
// BENCH_inference.json.
//
// Besides timing, the run asserts the two paths are bit-identical (the
// contract the golden tests prove in miniature) and that a warmed-up
// no-grad Predict performs zero tensor heap allocations — every node and
// data buffer is recycled through the per-thread arena.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/explain_ti_model.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"
#include "tensor/workspace.h"
#include "util/alloc_counter.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace explainti;

namespace {

struct PathStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double allocs_per_call = 0.0;
  int64_t arena_misses = 0;  // Meaningful for the no-grad path only.
};

double Percentile(std::vector<double> sorted_us, double q) {
  std::sort(sorted_us.begin(), sorted_us.end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

double ChecksumFloats(const std::vector<float>& v) {
  double sum = 0.0;
  for (float f : v) {
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    sum += static_cast<double>(bits % 9973);
  }
  return sum;
}

// Accumulates one path's measurements across interleaved rounds.
class PathMeter {
 public:
  template <typename Call>
  void MeasureRound(const std::vector<int>& ids, Call call) {
    const tensor::WorkspaceStats arena_before =
        tensor::ThisThreadWorkspaceStats();
    const util::AllocCounts heap_before = util::ThisThreadAllocCounts();
    for (int id : ids) {
      util::WallTimer timer;
      call(id);
      lat_us_.push_back(timer.ElapsedSeconds() * 1e6);
    }
    const util::AllocCounts heap_after = util::ThisThreadAllocCounts();
    const tensor::WorkspaceStats arena_after =
        tensor::ThisThreadWorkspaceStats();
    allocations_ += heap_after.allocations - heap_before.allocations;
    arena_misses_ +=
        (arena_after.node_misses - arena_before.node_misses) +
        (arena_after.buffer_misses - arena_before.buffer_misses);
  }

  PathStats Stats() const {
    PathStats stats;
    double total = 0.0;
    for (double v : lat_us_) total += v;
    stats.mean_us = total / static_cast<double>(lat_us_.size());
    stats.p50_us = Percentile(lat_us_, 0.50);
    stats.p99_us = Percentile(lat_us_, 0.99);
    stats.allocs_per_call = static_cast<double>(allocations_) /
                            static_cast<double>(lat_us_.size());
    stats.arena_misses = arena_misses_;
    return stats;
  }

 private:
  std::vector<double> lat_us_;
  int64_t allocations_ = 0;
  int64_t arena_misses_ = 0;
};

void EmitPath(std::ofstream& json, const char* name, const PathStats& s,
              bool last) {
  json << "    \"" << name << "\": {\"p50_us\": " << s.p50_us
       << ", \"p99_us\": " << s.p99_us << ", \"mean_us\": " << s.mean_us
       << ", \"allocations_per_call\": " << s.allocs_per_call
       << ", \"steady_state_arena_misses\": " << s.arena_misses << "}"
       << (last ? "\n" : ",\n");
}

}  // namespace

int main() {
  util::SetGlobalThreadCount(1);  // Per-call latency, not batch throughput.

  data::WikiTableOptions options;
  options.num_tables = 40;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);
  core::ExplainTiConfig config;
  config.sample_size = 4;
  config.top_k = 3;
  core::ExplainTiModel model(config, corpus);
  model.RefreshStores();
  const core::InferenceSession& session = model.session();

  const core::TaskData& task = model.task_data(core::TaskKind::kType);
  std::vector<int> ids;
  for (int id = 0;
       id < static_cast<int>(task.samples.size()) && ids.size() < 20; id += 2) {
    ids.push_back(id);
  }
  const int kRounds = 25;  // 20 ids x 25 rounds = 500 calls per path.

  // Bit-equality gate before timing: the fast path must serve exactly
  // what the tape path serves.
  for (int id : ids) {
    const double tape = ChecksumFloats(
        model.PredictProbabilities(core::TaskKind::kType, id));
    const double nograd = ChecksumFloats(
        session.PredictProbabilities(core::TaskKind::kType, id));
    CHECK_EQ(tape, nograd) << "no-grad probabilities drifted on sample " << id;
  }

  auto tape_predict_call = [&](int id) { model.Predict(core::TaskKind::kType, id); };
  auto nograd_predict_call = [&](int id) { session.Predict(core::TaskKind::kType, id); };
  auto tape_explain_call = [&](int id) { model.Explain(core::TaskKind::kType, id); };
  auto nograd_explain_call = [&](int id) { session.Explain(core::TaskKind::kType, id); };

  // Warm-up: two full passes per path so the arena (no-grad) and the
  // allocator reach their steady state before anything is measured.
  for (int r = 0; r < 2; ++r) {
    for (int id : ids) {
      tape_predict_call(id);
      nograd_predict_call(id);
      tape_explain_call(id);
      nograd_explain_call(id);
    }
  }

  // Interleave the four measured paths round by round: this container's
  // background load drifts on a seconds scale, and interleaving spreads
  // that drift evenly instead of letting it bias whichever path happened
  // to run during a slow window.
  PathMeter tape_predict_m, nograd_predict_m, tape_explain_m,
      nograd_explain_m;
  for (int r = 0; r < kRounds; ++r) {
    tape_predict_m.MeasureRound(ids, tape_predict_call);
    nograd_predict_m.MeasureRound(ids, nograd_predict_call);
    tape_explain_m.MeasureRound(ids, tape_explain_call);
    nograd_explain_m.MeasureRound(ids, nograd_explain_call);
  }
  const PathStats tape_predict = tape_predict_m.Stats();
  const PathStats nograd_predict = nograd_predict_m.Stats();
  const PathStats tape_explain = tape_explain_m.Stats();
  const PathStats nograd_explain = nograd_explain_m.Stats();

  CHECK_EQ(nograd_predict.arena_misses, 0)
      << "warmed-up no-grad Predict fell back to the heap";

  const double predict_speedup = tape_predict.p50_us / nograd_predict.p50_us;
  const double explain_speedup = tape_explain.p50_us / nograd_explain.p50_us;
  std::cerr << "[inference] Predict tape p50=" << tape_predict.p50_us
            << "us no-grad p50=" << nograd_predict.p50_us << "us speedup="
            << predict_speedup << "x\n";
  std::cerr << "[inference] Explain tape p50=" << tape_explain.p50_us
            << "us no-grad p50=" << nograd_explain.p50_us << "us speedup="
            << explain_speedup << "x\n";
  std::cerr << "[inference] no-grad allocations/call: Predict="
            << nograd_predict.allocs_per_call
            << " (tape " << tape_predict.allocs_per_call << "), Explain="
            << nograd_explain.allocs_per_call << " (tape "
            << tape_explain.allocs_per_call << ")\n";

  std::ofstream json("BENCH_inference.json");
  CHECK(json.good()) << "cannot open BENCH_inference.json";
  json << "{\n  " << explainti::bench::HostMetaJson()
       << ",\n  \"calls_per_path\": " << ids.size() * kRounds
       << ",\n  \"predict\": {\n";
  EmitPath(json, "tape", tape_predict, false);
  EmitPath(json, "nograd", nograd_predict, true);
  json << "  },\n  \"predict_p50_speedup\": " << predict_speedup
       << ",\n  \"explain\": {\n";
  EmitPath(json, "tape", tape_explain, false);
  EmitPath(json, "nograd", nograd_explain, true);
  json << "  },\n  \"explain_p50_speedup\": " << explain_speedup << "\n}\n";
  std::cerr << "[inference] wrote BENCH_inference.json\n";
  return 0;
}
