// Measures the no-grad InferenceSession serving path against the
// tape-building eval path on the same weights: per-call Predict/Explain
// latency (p50/p99 over a few hundred calls), heap allocations per call,
// and the steady-state workspace-arena miss count. Emits
// BENCH_inference.json.
//
// Since the compiled-plan work the file also measures plan-vs-graph:
// two sessions over identical weights — one serving from compiled
// inference plans (EXPLAINTI_PLAN=on), one pinned to the graph walk
// (EXPLAINTI_PLAN=off) — compared per method (predict,
// predict_probabilities, explain) and per batch size, plus a raw
// plan-executor section (RunPlan on caller-owned buffers). The
// "plan_vs_graph" JSON object is the input to ci/check_bench.py, which
// fails the release CI job if the plan path regresses behind the graph
// walk at any (method, batch_size) or stops being allocation-free.
//
// Besides timing, the run asserts the serving paths are bit-identical
// (the contract the golden tests prove in miniature) and that warmed-up
// no-grad serving performs zero tensor heap allocations — every node and
// data buffer is recycled through the per-thread arena.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/explain_ti_model.h"
#include "core/inference_plan.h"
#include "core/inference_session.h"
#include "data/wiki_generator.h"
#include "tensor/workspace.h"
#include "util/alloc_counter.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace explainti;

namespace {

struct PathStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double allocs_per_call = 0.0;
  int64_t arena_misses = 0;  // Meaningful for the no-grad path only.
};

double Percentile(std::vector<double> sorted_us, double q) {
  std::sort(sorted_us.begin(), sorted_us.end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

double ChecksumFloats(const std::vector<float>& v) {
  double sum = 0.0;
  for (float f : v) {
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    sum += static_cast<double>(bits % 9973);
  }
  return sum;
}

void CheckBitEqual(const std::vector<float>& a, const std::vector<float>& b,
                   const char* what, int id) {
  CHECK_EQ(a.size(), b.size()) << what << " size, sample " << id;
  CHECK(a.empty() ||
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0)
      << what << " diverged between plan and graph paths, sample " << id;
}

// Accumulates one path's measurements across interleaved rounds.
class PathMeter {
 public:
  template <typename Call>
  void MeasureRound(const std::vector<int>& ids, Call call) {
    const tensor::WorkspaceStats arena_before =
        tensor::ThisThreadWorkspaceStats();
    const util::AllocCounts heap_before = util::ThisThreadAllocCounts();
    for (int id : ids) {
      util::WallTimer timer;
      call(id);
      lat_us_.push_back(timer.ElapsedSeconds() * 1e6);
    }
    const util::AllocCounts heap_after = util::ThisThreadAllocCounts();
    const tensor::WorkspaceStats arena_after =
        tensor::ThisThreadWorkspaceStats();
    allocations_ += heap_after.allocations - heap_before.allocations;
    arena_misses_ +=
        (arena_after.node_misses - arena_before.node_misses) +
        (arena_after.buffer_misses - arena_before.buffer_misses);
  }

  PathStats Stats() const {
    PathStats stats;
    double total = 0.0;
    for (double v : lat_us_) total += v;
    stats.mean_us = total / static_cast<double>(lat_us_.size());
    stats.p50_us = Percentile(lat_us_, 0.50);
    stats.p99_us = Percentile(lat_us_, 0.99);
    stats.allocs_per_call = static_cast<double>(allocations_) /
                            static_cast<double>(lat_us_.size());
    stats.arena_misses = arena_misses_;
    return stats;
  }

 private:
  std::vector<double> lat_us_;
  int64_t allocations_ = 0;
  int64_t arena_misses_ = 0;
};

std::string PathJson(const PathStats& s) {
  std::ostringstream out;
  out << "{\"p50_us\": " << s.p50_us << ", \"p99_us\": " << s.p99_us
      << ", \"mean_us\": " << s.mean_us
      << ", \"allocations_per_call\": " << s.allocs_per_call
      << ", \"steady_state_arena_misses\": " << s.arena_misses << "}";
  return out.str();
}

void EmitPath(std::ofstream& json, const char* name, const PathStats& s,
              bool last) {
  json << "    \"" << name << "\": " << PathJson(s) << (last ? "\n" : ",\n");
}

// Splits `ids` into consecutive batches of `batch_size` (last may be
// short) — the request mix a micro-batching server would dispatch.
std::vector<std::vector<int>> MakeBatches(const std::vector<int>& ids,
                                          size_t batch_size) {
  std::vector<std::vector<int>> batches;
  for (size_t i = 0; i < ids.size(); i += batch_size) {
    batches.emplace_back(
        ids.begin() + static_cast<int64_t>(i),
        ids.begin() +
            static_cast<int64_t>(std::min(i + batch_size, ids.size())));
  }
  return batches;
}

// One (method, batch_size) cell of the plan-vs-graph matrix: latency per
// *batch call* on each session, interleaved round by round.
struct MatrixCell {
  PathStats plan;
  PathStats graph;
};

template <typename BatchCall>
MatrixCell MeasureCell(const std::vector<std::vector<int>>& batches,
                       int rounds, const core::InferenceSession& plan_session,
                       const core::InferenceSession& graph_session,
                       BatchCall call) {
  PathMeter plan_m, graph_m;
  std::vector<int> batch_indices(batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    batch_indices[static_cast<size_t>(i)] = static_cast<int>(i);
  }
  for (int r = 0; r < rounds; ++r) {
    plan_m.MeasureRound(batch_indices, [&](int b) {
      call(plan_session, batches[static_cast<size_t>(b)]);
    });
    graph_m.MeasureRound(batch_indices, [&](int b) {
      call(graph_session, batches[static_cast<size_t>(b)]);
    });
  }
  return {plan_m.Stats(), graph_m.Stats()};
}

}  // namespace

int main() {
  util::SetGlobalThreadCount(1);  // Per-call latency, not batch throughput.

  data::WikiTableOptions options;
  options.num_tables = 40;
  const data::TableCorpus corpus = data::GenerateWikiTableCorpus(options);
  core::ExplainTiConfig config;
  config.sample_size = 4;
  config.top_k = 3;

  // Two models over identical weights (same config seed, same corpus):
  // one session compiles inference plans, the other is pinned to the
  // graph walk. The env var is latched in the session constructor, so
  // scoping it around each construction is sufficient.
  setenv("EXPLAINTI_PLAN", "off", 1);
  auto graph_model = std::make_unique<core::ExplainTiModel>(config, corpus);
  setenv("EXPLAINTI_PLAN", "on", 1);
  auto plan_model = std::make_unique<core::ExplainTiModel>(config, corpus);
  unsetenv("EXPLAINTI_PLAN");
  graph_model->RefreshStores();
  plan_model->RefreshStores();
  core::ExplainTiModel& model = *plan_model;  // Tape reference path.
  const core::InferenceSession& session = plan_model->session();
  const core::InferenceSession& graph_session = graph_model->session();
  CHECK(session.plans_enabled()) << "plan session failed to compile plans";
  CHECK(!graph_session.plans_enabled())
      << "EXPLAINTI_PLAN=off session unexpectedly built plans";

  const core::TaskData& task = model.task_data(core::TaskKind::kType);
  std::vector<int> ids;
  for (int id = 0;
       id < static_cast<int>(task.samples.size()) && ids.size() < 20; id += 2) {
    ids.push_back(id);
  }
  const int kRounds = 25;  // 20 ids x 25 rounds = 500 calls per path.

  // Bit-equality gates before timing: the fast paths must serve exactly
  // what the tape path serves, and the plan path exactly what the graph
  // walk serves — probabilities and [CLS] encodings alike.
  for (int id : ids) {
    const double tape = ChecksumFloats(
        model.PredictProbabilities(core::TaskKind::kType, id));
    const double nograd = ChecksumFloats(
        session.PredictProbabilities(core::TaskKind::kType, id));
    CHECK_EQ(tape, nograd) << "no-grad probabilities drifted on sample " << id;
    CheckBitEqual(session.PredictProbabilities(core::TaskKind::kType, id),
                  graph_session.PredictProbabilities(core::TaskKind::kType, id),
                  "probabilities", id);
    CHECK(session.Predict(core::TaskKind::kType, id) ==
          graph_session.Predict(core::TaskKind::kType, id))
        << "plan Predict diverged on sample " << id;
  }
  {
    const auto plan_embs = session.EncodeBatch(core::TaskKind::kType, ids);
    const auto graph_embs =
        graph_session.EncodeBatch(core::TaskKind::kType, ids);
    for (size_t i = 0; i < ids.size(); ++i) {
      CheckBitEqual(plan_embs[i], graph_embs[i], "[CLS] encoding", ids[i]);
    }
  }

  auto tape_predict_call = [&](int id) { model.Predict(core::TaskKind::kType, id); };
  auto nograd_predict_call = [&](int id) { session.Predict(core::TaskKind::kType, id); };
  auto tape_explain_call = [&](int id) { model.Explain(core::TaskKind::kType, id); };
  auto nograd_explain_call = [&](int id) { session.Explain(core::TaskKind::kType, id); };

  // Warm-up: two full passes per path so the arena (no-grad) and the
  // allocator reach their steady state before anything is measured.
  for (int r = 0; r < 2; ++r) {
    for (int id : ids) {
      tape_predict_call(id);
      nograd_predict_call(id);
      tape_explain_call(id);
      nograd_explain_call(id);
      graph_session.Predict(core::TaskKind::kType, id);
      graph_session.Explain(core::TaskKind::kType, id);
    }
  }

  // Interleave the four measured paths round by round: this container's
  // background load drifts on a seconds scale, and interleaving spreads
  // that drift evenly instead of letting it bias whichever path happened
  // to run during a slow window.
  PathMeter tape_predict_m, nograd_predict_m, tape_explain_m,
      nograd_explain_m;
  for (int r = 0; r < kRounds; ++r) {
    tape_predict_m.MeasureRound(ids, tape_predict_call);
    nograd_predict_m.MeasureRound(ids, nograd_predict_call);
    tape_explain_m.MeasureRound(ids, tape_explain_call);
    nograd_explain_m.MeasureRound(ids, nograd_explain_call);
  }
  const PathStats tape_predict = tape_predict_m.Stats();
  const PathStats nograd_predict = nograd_predict_m.Stats();
  const PathStats tape_explain = tape_explain_m.Stats();
  const PathStats nograd_explain = nograd_explain_m.Stats();

  CHECK_EQ(nograd_predict.arena_misses, 0)
      << "warmed-up no-grad Predict fell back to the heap";

  // -- Plan vs graph walk, per method and batch size ----------------------
  const std::vector<size_t> kBatchSizes = {1, 4, 8};
  const int kMatrixRounds = 12;
  struct MethodRow {
    const char* name;
    std::vector<MatrixCell> cells;  // Parallel to kBatchSizes.
  };
  std::vector<MethodRow> matrix = {
      {"predict", {}}, {"predict_probabilities", {}}, {"explain", {}}};
  for (size_t bi = 0; bi < kBatchSizes.size(); ++bi) {
    const auto batches = MakeBatches(ids, kBatchSizes[bi]);
    matrix[0].cells.push_back(MeasureCell(
        batches, kMatrixRounds, session, graph_session,
        [](const core::InferenceSession& s, const std::vector<int>& b) {
          s.PredictBatch(core::TaskKind::kType, b);
        }));
    matrix[1].cells.push_back(MeasureCell(
        batches, kMatrixRounds, session, graph_session,
        [](const core::InferenceSession& s, const std::vector<int>& b) {
          s.PredictProbabilitiesBatch(core::TaskKind::kType, b);
        }));
    matrix[2].cells.push_back(MeasureCell(
        batches, kMatrixRounds, session, graph_session,
        [](const core::InferenceSession& s, const std::vector<int>& b) {
          s.ExplainBatch(core::TaskKind::kType, b);
        }));
  }

  // -- Raw plan executor: RunPlan on caller-owned buffers -----------------
  // Serving entry points return freshly allocated result vectors, so the
  // zero-allocation property is asserted where it holds by construction:
  // the executor itself. Warm the arena bucket, then demand zero heap
  // traffic and zero pool misses.
  PathStats plan_executor;
  {
    const core::InferencePlan* plan =
        session.PlanFor(core::TaskKind::kType, ids.front());
    CHECK(plan != nullptr);
    const core::TaskSample& sample =
        task.samples[static_cast<size_t>(ids.front())];
    std::vector<float> encoder_out(
        static_cast<size_t>(plan->seq_len * plan->d_model));
    std::vector<float> logits(
        static_cast<size_t>(std::max<int64_t>(plan->num_labels, 1)));
    core::PlanRun run;
    run.token_ids = sample.seq.ids.data();
    run.segment_ids =
        plan->has_segments ? sample.seq.segments.data() : nullptr;
    run.encoder_out = encoder_out.data();
    run.encoder_out_rows = plan->seq_len;
    run.logits = plan->logits_off >= 0 ? logits.data() : nullptr;

    core::RunPlan(*plan, run);  // Warm-up.
    core::RunPlan(*plan, run);

    const int kExecRounds = 200;
    std::vector<double> lat_us;
    lat_us.reserve(kExecRounds);
    const tensor::WorkspaceStats ws_before =
        tensor::ThisThreadWorkspaceStats();
    const util::AllocCounts heap_before = util::ThisThreadAllocCounts();
    for (int r = 0; r < kExecRounds; ++r) {
      util::WallTimer timer;
      core::RunPlan(*plan, run);
      lat_us.push_back(timer.ElapsedSeconds() * 1e6);
    }
    const util::AllocCounts heap_after = util::ThisThreadAllocCounts();
    const tensor::WorkspaceStats ws_after = tensor::ThisThreadWorkspaceStats();

    double total = 0.0;
    for (double v : lat_us) total += v;
    plan_executor.mean_us = total / static_cast<double>(lat_us.size());
    plan_executor.p50_us = Percentile(lat_us, 0.50);
    plan_executor.p99_us = Percentile(lat_us, 0.99);
    plan_executor.allocs_per_call =
        static_cast<double>(heap_after.allocations - heap_before.allocations) /
        static_cast<double>(kExecRounds);
    plan_executor.arena_misses = static_cast<int64_t>(
        ws_after.buffer_misses - ws_before.buffer_misses);
    CHECK_EQ(heap_after.allocations, heap_before.allocations)
        << "warmed-up RunPlan allocated on the heap";
    CHECK_EQ(plan_executor.arena_misses, 0)
        << "warmed-up RunPlan missed the workspace buffer pool";
  }

  const double predict_speedup = tape_predict.p50_us / nograd_predict.p50_us;
  const double explain_speedup = tape_explain.p50_us / nograd_explain.p50_us;
  std::cerr << "[inference] Predict tape p50=" << tape_predict.p50_us
            << "us no-grad p50=" << nograd_predict.p50_us << "us speedup="
            << predict_speedup << "x\n";
  std::cerr << "[inference] Explain tape p50=" << tape_explain.p50_us
            << "us no-grad p50=" << nograd_explain.p50_us << "us speedup="
            << explain_speedup << "x\n";
  std::cerr << "[inference] no-grad allocations/call: Predict="
            << nograd_predict.allocs_per_call
            << " (tape " << tape_predict.allocs_per_call << "), Explain="
            << nograd_explain.allocs_per_call << " (tape "
            << tape_explain.allocs_per_call << ")\n";
  for (const MethodRow& row : matrix) {
    for (size_t bi = 0; bi < kBatchSizes.size(); ++bi) {
      const MatrixCell& cell = row.cells[bi];
      std::cerr << "[inference] plan-vs-graph " << row.name << " batch="
                << kBatchSizes[bi] << ": plan p50=" << cell.plan.p50_us
                << "us graph p50=" << cell.graph.p50_us << "us ("
                << cell.graph.p50_us / cell.plan.p50_us << "x)\n";
    }
  }
  std::cerr << "[inference] plan executor p50=" << plan_executor.p50_us
            << "us allocations/call=" << plan_executor.allocs_per_call
            << "\n";

  std::ofstream json("BENCH_inference.json");
  CHECK(json.good()) << "cannot open BENCH_inference.json";
  json << "{\n  " << explainti::bench::HostMetaJson()
       << ",\n  \"calls_per_path\": " << ids.size() * kRounds
       << ",\n  \"predict\": {\n";
  EmitPath(json, "tape", tape_predict, false);
  EmitPath(json, "nograd", nograd_predict, true);
  json << "  },\n  \"predict_p50_speedup\": " << predict_speedup
       << ",\n  \"explain\": {\n";
  EmitPath(json, "tape", tape_explain, false);
  EmitPath(json, "nograd", nograd_explain, true);
  json << "  },\n  \"explain_p50_speedup\": " << explain_speedup
       << ",\n  \"plan_vs_graph\": {\n";
  for (size_t mi = 0; mi < matrix.size(); ++mi) {
    json << "    \"" << matrix[mi].name << "\": {\n";
    for (size_t bi = 0; bi < kBatchSizes.size(); ++bi) {
      const MatrixCell& cell = matrix[mi].cells[bi];
      json << "      \"batch_" << kBatchSizes[bi]
           << "\": {\"plan\": " << PathJson(cell.plan)
           << ", \"graph\": " << PathJson(cell.graph) << "}"
           << (bi + 1 < kBatchSizes.size() ? ",\n" : "\n");
    }
    json << "    },\n";
  }
  json << "    \"plan_executor\": " << PathJson(plan_executor)
       << "\n  }\n}\n";
  std::cerr << "[inference] wrote BENCH_inference.json\n";
  return 0;
}
