# Empty compiler generated dependencies file for explainti_data.
# This may be replaced when dependencies are built.
