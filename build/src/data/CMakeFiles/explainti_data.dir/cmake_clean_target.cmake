file(REMOVE_RECURSE
  "libexplainti_data.a"
)
