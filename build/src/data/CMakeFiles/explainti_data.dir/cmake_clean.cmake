file(REMOVE_RECURSE
  "CMakeFiles/explainti_data.dir/corpus.cc.o"
  "CMakeFiles/explainti_data.dir/corpus.cc.o.d"
  "CMakeFiles/explainti_data.dir/csv_loader.cc.o"
  "CMakeFiles/explainti_data.dir/csv_loader.cc.o.d"
  "CMakeFiles/explainti_data.dir/git_generator.cc.o"
  "CMakeFiles/explainti_data.dir/git_generator.cc.o.d"
  "CMakeFiles/explainti_data.dir/value_pools.cc.o"
  "CMakeFiles/explainti_data.dir/value_pools.cc.o.d"
  "CMakeFiles/explainti_data.dir/wiki_generator.cc.o"
  "CMakeFiles/explainti_data.dir/wiki_generator.cc.o.d"
  "libexplainti_data.a"
  "libexplainti_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
