
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/corpus.cc" "src/data/CMakeFiles/explainti_data.dir/corpus.cc.o" "gcc" "src/data/CMakeFiles/explainti_data.dir/corpus.cc.o.d"
  "/root/repo/src/data/csv_loader.cc" "src/data/CMakeFiles/explainti_data.dir/csv_loader.cc.o" "gcc" "src/data/CMakeFiles/explainti_data.dir/csv_loader.cc.o.d"
  "/root/repo/src/data/git_generator.cc" "src/data/CMakeFiles/explainti_data.dir/git_generator.cc.o" "gcc" "src/data/CMakeFiles/explainti_data.dir/git_generator.cc.o.d"
  "/root/repo/src/data/value_pools.cc" "src/data/CMakeFiles/explainti_data.dir/value_pools.cc.o" "gcc" "src/data/CMakeFiles/explainti_data.dir/value_pools.cc.o.d"
  "/root/repo/src/data/wiki_generator.cc" "src/data/CMakeFiles/explainti_data.dir/wiki_generator.cc.o" "gcc" "src/data/CMakeFiles/explainti_data.dir/wiki_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/explainti_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/explainti_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
