file(REMOVE_RECURSE
  "libexplainti_text.a"
)
