# Empty compiler generated dependencies file for explainti_text.
# This may be replaced when dependencies are built.
