file(REMOVE_RECURSE
  "CMakeFiles/explainti_text.dir/serializer.cc.o"
  "CMakeFiles/explainti_text.dir/serializer.cc.o.d"
  "CMakeFiles/explainti_text.dir/tokenizer.cc.o"
  "CMakeFiles/explainti_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/explainti_text.dir/vocab.cc.o"
  "CMakeFiles/explainti_text.dir/vocab.cc.o.d"
  "libexplainti_text.a"
  "libexplainti_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
