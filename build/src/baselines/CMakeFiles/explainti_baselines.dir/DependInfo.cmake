
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/column_features.cc" "src/baselines/CMakeFiles/explainti_baselines.dir/column_features.cc.o" "gcc" "src/baselines/CMakeFiles/explainti_baselines.dir/column_features.cc.o.d"
  "/root/repo/src/baselines/doduo.cc" "src/baselines/CMakeFiles/explainti_baselines.dir/doduo.cc.o" "gcc" "src/baselines/CMakeFiles/explainti_baselines.dir/doduo.cc.o.d"
  "/root/repo/src/baselines/feature_mlp.cc" "src/baselines/CMakeFiles/explainti_baselines.dir/feature_mlp.cc.o" "gcc" "src/baselines/CMakeFiles/explainti_baselines.dir/feature_mlp.cc.o.d"
  "/root/repo/src/baselines/posthoc.cc" "src/baselines/CMakeFiles/explainti_baselines.dir/posthoc.cc.o" "gcc" "src/baselines/CMakeFiles/explainti_baselines.dir/posthoc.cc.o.d"
  "/root/repo/src/baselines/self_explain.cc" "src/baselines/CMakeFiles/explainti_baselines.dir/self_explain.cc.o" "gcc" "src/baselines/CMakeFiles/explainti_baselines.dir/self_explain.cc.o.d"
  "/root/repo/src/baselines/tabert.cc" "src/baselines/CMakeFiles/explainti_baselines.dir/tabert.cc.o" "gcc" "src/baselines/CMakeFiles/explainti_baselines.dir/tabert.cc.o.d"
  "/root/repo/src/baselines/table_interpreter.cc" "src/baselines/CMakeFiles/explainti_baselines.dir/table_interpreter.cc.o" "gcc" "src/baselines/CMakeFiles/explainti_baselines.dir/table_interpreter.cc.o.d"
  "/root/repo/src/baselines/tcn.cc" "src/baselines/CMakeFiles/explainti_baselines.dir/tcn.cc.o" "gcc" "src/baselines/CMakeFiles/explainti_baselines.dir/tcn.cc.o.d"
  "/root/repo/src/baselines/transformer_baseline.cc" "src/baselines/CMakeFiles/explainti_baselines.dir/transformer_baseline.cc.o" "gcc" "src/baselines/CMakeFiles/explainti_baselines.dir/transformer_baseline.cc.o.d"
  "/root/repo/src/baselines/turl.cc" "src/baselines/CMakeFiles/explainti_baselines.dir/turl.cc.o" "gcc" "src/baselines/CMakeFiles/explainti_baselines.dir/turl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ann/CMakeFiles/explainti_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/explainti_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/explainti_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/explainti_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/explainti_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/explainti_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/explainti_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/explainti_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/explainti_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
