file(REMOVE_RECURSE
  "libexplainti_baselines.a"
)
