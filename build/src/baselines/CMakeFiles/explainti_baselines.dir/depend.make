# Empty dependencies file for explainti_baselines.
# This may be replaced when dependencies are built.
