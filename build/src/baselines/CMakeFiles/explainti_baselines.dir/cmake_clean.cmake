file(REMOVE_RECURSE
  "CMakeFiles/explainti_baselines.dir/column_features.cc.o"
  "CMakeFiles/explainti_baselines.dir/column_features.cc.o.d"
  "CMakeFiles/explainti_baselines.dir/doduo.cc.o"
  "CMakeFiles/explainti_baselines.dir/doduo.cc.o.d"
  "CMakeFiles/explainti_baselines.dir/feature_mlp.cc.o"
  "CMakeFiles/explainti_baselines.dir/feature_mlp.cc.o.d"
  "CMakeFiles/explainti_baselines.dir/posthoc.cc.o"
  "CMakeFiles/explainti_baselines.dir/posthoc.cc.o.d"
  "CMakeFiles/explainti_baselines.dir/self_explain.cc.o"
  "CMakeFiles/explainti_baselines.dir/self_explain.cc.o.d"
  "CMakeFiles/explainti_baselines.dir/tabert.cc.o"
  "CMakeFiles/explainti_baselines.dir/tabert.cc.o.d"
  "CMakeFiles/explainti_baselines.dir/table_interpreter.cc.o"
  "CMakeFiles/explainti_baselines.dir/table_interpreter.cc.o.d"
  "CMakeFiles/explainti_baselines.dir/tcn.cc.o"
  "CMakeFiles/explainti_baselines.dir/tcn.cc.o.d"
  "CMakeFiles/explainti_baselines.dir/transformer_baseline.cc.o"
  "CMakeFiles/explainti_baselines.dir/transformer_baseline.cc.o.d"
  "CMakeFiles/explainti_baselines.dir/turl.cc.o"
  "CMakeFiles/explainti_baselines.dir/turl.cc.o.d"
  "libexplainti_baselines.a"
  "libexplainti_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
