file(REMOVE_RECURSE
  "libexplainti_tensor.a"
)
