# Empty dependencies file for explainti_tensor.
# This may be replaced when dependencies are built.
