file(REMOVE_RECURSE
  "CMakeFiles/explainti_tensor.dir/gradcheck.cc.o"
  "CMakeFiles/explainti_tensor.dir/gradcheck.cc.o.d"
  "CMakeFiles/explainti_tensor.dir/optimizer.cc.o"
  "CMakeFiles/explainti_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/explainti_tensor.dir/tensor.cc.o"
  "CMakeFiles/explainti_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/explainti_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/explainti_tensor.dir/tensor_ops.cc.o.d"
  "libexplainti_tensor.a"
  "libexplainti_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
