
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/f1_metrics.cc" "src/eval/CMakeFiles/explainti_eval.dir/f1_metrics.cc.o" "gcc" "src/eval/CMakeFiles/explainti_eval.dir/f1_metrics.cc.o.d"
  "/root/repo/src/eval/human_sim.cc" "src/eval/CMakeFiles/explainti_eval.dir/human_sim.cc.o" "gcc" "src/eval/CMakeFiles/explainti_eval.dir/human_sim.cc.o.d"
  "/root/repo/src/eval/sufficiency.cc" "src/eval/CMakeFiles/explainti_eval.dir/sufficiency.cc.o" "gcc" "src/eval/CMakeFiles/explainti_eval.dir/sufficiency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/explainti_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/explainti_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/explainti_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/explainti_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
