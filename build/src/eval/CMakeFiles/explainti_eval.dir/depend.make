# Empty dependencies file for explainti_eval.
# This may be replaced when dependencies are built.
