file(REMOVE_RECURSE
  "CMakeFiles/explainti_eval.dir/f1_metrics.cc.o"
  "CMakeFiles/explainti_eval.dir/f1_metrics.cc.o.d"
  "CMakeFiles/explainti_eval.dir/human_sim.cc.o"
  "CMakeFiles/explainti_eval.dir/human_sim.cc.o.d"
  "CMakeFiles/explainti_eval.dir/sufficiency.cc.o"
  "CMakeFiles/explainti_eval.dir/sufficiency.cc.o.d"
  "libexplainti_eval.a"
  "libexplainti_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
