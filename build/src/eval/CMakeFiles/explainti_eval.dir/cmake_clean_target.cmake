file(REMOVE_RECURSE
  "libexplainti_eval.a"
)
