
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ann/flat_index.cc" "src/ann/CMakeFiles/explainti_ann.dir/flat_index.cc.o" "gcc" "src/ann/CMakeFiles/explainti_ann.dir/flat_index.cc.o.d"
  "/root/repo/src/ann/hnsw_index.cc" "src/ann/CMakeFiles/explainti_ann.dir/hnsw_index.cc.o" "gcc" "src/ann/CMakeFiles/explainti_ann.dir/hnsw_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/explainti_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
