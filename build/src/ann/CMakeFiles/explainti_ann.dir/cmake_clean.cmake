file(REMOVE_RECURSE
  "CMakeFiles/explainti_ann.dir/flat_index.cc.o"
  "CMakeFiles/explainti_ann.dir/flat_index.cc.o.d"
  "CMakeFiles/explainti_ann.dir/hnsw_index.cc.o"
  "CMakeFiles/explainti_ann.dir/hnsw_index.cc.o.d"
  "libexplainti_ann.a"
  "libexplainti_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
