file(REMOVE_RECURSE
  "libexplainti_ann.a"
)
