# Empty compiler generated dependencies file for explainti_ann.
# This may be replaced when dependencies are built.
