
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/explainti_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/explainti_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/embeddings.cc" "src/nn/CMakeFiles/explainti_nn.dir/embeddings.cc.o" "gcc" "src/nn/CMakeFiles/explainti_nn.dir/embeddings.cc.o.d"
  "/root/repo/src/nn/encoder.cc" "src/nn/CMakeFiles/explainti_nn.dir/encoder.cc.o" "gcc" "src/nn/CMakeFiles/explainti_nn.dir/encoder.cc.o.d"
  "/root/repo/src/nn/heads.cc" "src/nn/CMakeFiles/explainti_nn.dir/heads.cc.o" "gcc" "src/nn/CMakeFiles/explainti_nn.dir/heads.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/explainti_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/explainti_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/explainti_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/explainti_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/pretrain.cc" "src/nn/CMakeFiles/explainti_nn.dir/pretrain.cc.o" "gcc" "src/nn/CMakeFiles/explainti_nn.dir/pretrain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/explainti_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/explainti_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/explainti_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
