file(REMOVE_RECURSE
  "libexplainti_nn.a"
)
