file(REMOVE_RECURSE
  "CMakeFiles/explainti_nn.dir/attention.cc.o"
  "CMakeFiles/explainti_nn.dir/attention.cc.o.d"
  "CMakeFiles/explainti_nn.dir/embeddings.cc.o"
  "CMakeFiles/explainti_nn.dir/embeddings.cc.o.d"
  "CMakeFiles/explainti_nn.dir/encoder.cc.o"
  "CMakeFiles/explainti_nn.dir/encoder.cc.o.d"
  "CMakeFiles/explainti_nn.dir/heads.cc.o"
  "CMakeFiles/explainti_nn.dir/heads.cc.o.d"
  "CMakeFiles/explainti_nn.dir/linear.cc.o"
  "CMakeFiles/explainti_nn.dir/linear.cc.o.d"
  "CMakeFiles/explainti_nn.dir/module.cc.o"
  "CMakeFiles/explainti_nn.dir/module.cc.o.d"
  "CMakeFiles/explainti_nn.dir/pretrain.cc.o"
  "CMakeFiles/explainti_nn.dir/pretrain.cc.o.d"
  "libexplainti_nn.a"
  "libexplainti_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
