# Empty compiler generated dependencies file for explainti_nn.
# This may be replaced when dependencies are built.
