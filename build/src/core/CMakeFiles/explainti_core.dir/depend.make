# Empty dependencies file for explainti_core.
# This may be replaced when dependencies are built.
