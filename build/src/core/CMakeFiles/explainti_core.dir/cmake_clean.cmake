file(REMOVE_RECURSE
  "CMakeFiles/explainti_core.dir/embedding_store.cc.o"
  "CMakeFiles/explainti_core.dir/embedding_store.cc.o.d"
  "CMakeFiles/explainti_core.dir/explain_ti_model.cc.o"
  "CMakeFiles/explainti_core.dir/explain_ti_model.cc.o.d"
  "CMakeFiles/explainti_core.dir/task_data.cc.o"
  "CMakeFiles/explainti_core.dir/task_data.cc.o.d"
  "libexplainti_core.a"
  "libexplainti_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
