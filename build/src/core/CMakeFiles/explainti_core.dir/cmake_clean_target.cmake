file(REMOVE_RECURSE
  "libexplainti_core.a"
)
