file(REMOVE_RECURSE
  "libexplainti_util.a"
)
