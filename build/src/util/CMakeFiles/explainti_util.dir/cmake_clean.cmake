file(REMOVE_RECURSE
  "CMakeFiles/explainti_util.dir/csv.cc.o"
  "CMakeFiles/explainti_util.dir/csv.cc.o.d"
  "CMakeFiles/explainti_util.dir/logging.cc.o"
  "CMakeFiles/explainti_util.dir/logging.cc.o.d"
  "CMakeFiles/explainti_util.dir/rng.cc.o"
  "CMakeFiles/explainti_util.dir/rng.cc.o.d"
  "CMakeFiles/explainti_util.dir/status.cc.o"
  "CMakeFiles/explainti_util.dir/status.cc.o.d"
  "CMakeFiles/explainti_util.dir/string_util.cc.o"
  "CMakeFiles/explainti_util.dir/string_util.cc.o.d"
  "CMakeFiles/explainti_util.dir/table_printer.cc.o"
  "CMakeFiles/explainti_util.dir/table_printer.cc.o.d"
  "libexplainti_util.a"
  "libexplainti_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
