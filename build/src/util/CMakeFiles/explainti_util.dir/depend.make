# Empty dependencies file for explainti_util.
# This may be replaced when dependencies are built.
