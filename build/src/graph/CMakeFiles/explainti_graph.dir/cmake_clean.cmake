file(REMOVE_RECURSE
  "CMakeFiles/explainti_graph.dir/column_graph.cc.o"
  "CMakeFiles/explainti_graph.dir/column_graph.cc.o.d"
  "libexplainti_graph.a"
  "libexplainti_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
