file(REMOVE_RECURSE
  "libexplainti_graph.a"
)
