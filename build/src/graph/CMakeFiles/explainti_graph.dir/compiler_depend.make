# Empty compiler generated dependencies file for explainti_graph.
# This may be replaced when dependencies are built.
