file(REMOVE_RECURSE
  "CMakeFiles/relation_discovery.dir/relation_discovery.cpp.o"
  "CMakeFiles/relation_discovery.dir/relation_discovery.cpp.o.d"
  "relation_discovery"
  "relation_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
