# Empty compiler generated dependencies file for relation_discovery.
# This may be replaced when dependencies are built.
