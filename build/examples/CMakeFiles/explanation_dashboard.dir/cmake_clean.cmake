file(REMOVE_RECURSE
  "CMakeFiles/explanation_dashboard.dir/explanation_dashboard.cpp.o"
  "CMakeFiles/explanation_dashboard.dir/explanation_dashboard.cpp.o.d"
  "explanation_dashboard"
  "explanation_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explanation_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
