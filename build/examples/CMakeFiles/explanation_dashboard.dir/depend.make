# Empty dependencies file for explanation_dashboard.
# This may be replaced when dependencies are built.
