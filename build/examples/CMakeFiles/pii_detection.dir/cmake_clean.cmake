file(REMOVE_RECURSE
  "CMakeFiles/pii_detection.dir/pii_detection.cpp.o"
  "CMakeFiles/pii_detection.dir/pii_detection.cpp.o.d"
  "pii_detection"
  "pii_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pii_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
