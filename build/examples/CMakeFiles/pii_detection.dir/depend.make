# Empty dependencies file for pii_detection.
# This may be replaced when dependencies are built.
