
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ann_test.cc" "tests/CMakeFiles/ann_test.dir/ann_test.cc.o" "gcc" "tests/CMakeFiles/ann_test.dir/ann_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/explainti_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/explainti_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/explainti_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/explainti_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/explainti_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/explainti_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/explainti_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/explainti_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/explainti_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/explainti_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/explainti_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
