file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_sufficiency.dir/bench_table4_sufficiency.cc.o"
  "CMakeFiles/bench_table4_sufficiency.dir/bench_table4_sufficiency.cc.o.d"
  "bench_table4_sufficiency"
  "bench_table4_sufficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_sufficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
