# Empty compiler generated dependencies file for bench_table4_sufficiency.
# This may be replaced when dependencies are built.
