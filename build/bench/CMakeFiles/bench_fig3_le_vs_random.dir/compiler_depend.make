# Empty compiler generated dependencies file for bench_fig3_le_vs_random.
# This may be replaced when dependencies are built.
