# Empty dependencies file for explainti_bench_common.
# This may be replaced when dependencies are built.
