file(REMOVE_RECURSE
  "CMakeFiles/explainti_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/explainti_bench_common.dir/bench_common.cc.o.d"
  "libexplainti_bench_common.a"
  "libexplainti_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainti_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
