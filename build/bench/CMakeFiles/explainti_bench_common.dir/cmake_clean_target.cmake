file(REMOVE_RECURSE
  "libexplainti_bench_common.a"
)
