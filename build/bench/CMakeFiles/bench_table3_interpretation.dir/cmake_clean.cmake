file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_interpretation.dir/bench_table3_interpretation.cc.o"
  "CMakeFiles/bench_table3_interpretation.dir/bench_table3_interpretation.cc.o.d"
  "bench_table3_interpretation"
  "bench_table3_interpretation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_interpretation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
