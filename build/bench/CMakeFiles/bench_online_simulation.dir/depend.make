# Empty dependencies file for bench_online_simulation.
# This may be replaced when dependencies are built.
