file(REMOVE_RECURSE
  "CMakeFiles/bench_online_simulation.dir/bench_online_simulation.cc.o"
  "CMakeFiles/bench_online_simulation.dir/bench_online_simulation.cc.o.d"
  "bench_online_simulation"
  "bench_online_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
