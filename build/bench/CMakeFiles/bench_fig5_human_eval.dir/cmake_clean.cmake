file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_human_eval.dir/bench_fig5_human_eval.cc.o"
  "CMakeFiles/bench_fig5_human_eval.dir/bench_fig5_human_eval.cc.o.d"
  "bench_fig5_human_eval"
  "bench_fig5_human_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_human_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
