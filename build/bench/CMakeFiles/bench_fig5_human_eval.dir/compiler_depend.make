# Empty compiler generated dependencies file for bench_fig5_human_eval.
# This may be replaced when dependencies are built.
