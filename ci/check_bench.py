#!/usr/bin/env python3
"""Bench-regression gate over the BENCH_*.json files CI produces.

Dispatches on content. Host-dependent assertions (throughput ratios that
need real cores or a quiet machine) are armed from the "host" metadata
bench::HostMetaJson() embeds in every file — a 1-thread container prints
an explicit SKIPPED line instead of silently passing, so a CI log always
shows whether the perf gates actually ran.

A file with a "quantized" object (BENCH_quantized.json, from
bench_quantized) is gated on:

  * served_precision == "int8" and fp32_fallback_layers == 0 — the pure
    int8 policy is all-or-nothing, so a partially-armed tier means the
    build fell back somewhere it should not have;
  * max_f1_delta <= 0.10: macro-F1 on the tiny held-out splits moves in
    ~0.04 steps per flipped sample, so the tolerance allows a couple of
    flips but fails on systematic quantization damage;
  * golden evidence agreement >= 0.6 and prediction agreement >= 0.8 on
    the shared golden fixture (tests/golden_evidence.h);
  * weight-memory reduction >= 3.0: int8 data plus the per-column fp32
    scale and int32 col_sum overhead lands at ~3.4x on the d_model=64
    test encoder (4x asymptotically as columns grow);
  * the raw int8 plan executor performed exactly zero heap allocations
    and zero arena misses after warm-up;
  * int8 GEMM throughput >= 2x fp32 — armed on hosts with >= 4 hardware
    threads (shared 1-thread containers time both kernels too noisily).

A file with a "qa" object (BENCH_qa.json, from bench_qa) is gated on:

  * min_oracle_agreement >= 0.999 — composing an answer through QaEngine
    must reproduce the direct InferenceSession::Predict oracle exactly on
    the teacher path (composition changes provenance, never labels);
  * min_surrogate_agreement >= 0.85 — the explanation-distilled surrogate
    must agree with the teacher's answers on both corpora, or the cheap
    tier is answering with different semantics;
  * escalation-rate sanity: every cascade point's rate lies in [0, 1] and
    rates are non-decreasing in the confidence threshold (a higher bar
    can only escalate more);
  * surrogate scoring performed exactly zero heap allocations per call
    after warm-up;
  * composed-justification coverage >= its constituent coverage —
    composition must not dilute evidence (deterministic, always armed);
  * surrogate per-table scoring >= 2x cheaper than teacher
    PredictProbabilities p50 — armed on hosts with >= 4 hardware threads
    (1-thread containers time both paths too noisily).

A file with a "peak_speedup_vs_sequential" member (BENCH_serving.json,
from bench_online_simulation) is gated on batched serving beating the
sequential baseline by >= 1.5x at peak offered load, armed from the
embedded host metadata the same way.

A file with a "store" array (BENCH_store.json,
from bench_embedding_store) is gated on:

  * recall_at_10 >= the file's own recall_floor in every row — the
    segmented HNSW must stay an accurate index, not just a fast one;
  * roundtrip_identical is true everywhere: a persisted store reloaded
    from disk answered every probe bit-identically;
  * steady_state_allocations == 0 exactly: the warm serial search path
    must not touch the heap;
  * multi-shard incremental rebuilds re-encode only dirty segments
    (segments_built < shards when shards > 1).

A file with a "plan_vs_graph" object (BENCH_inference.json) is gated as
before — fails the job (exit 1) if the compiled-plan serving path has
regressed behind the graph walk:

  * plan p50 must not exceed graph p50 by more than --max-ratio for any
    (method, batch_size) cell. Both paths are bound by the same shared
    GEMM kernels, so their p50s sit within a few percent of each other;
    the tolerance absorbs container timer noise while still catching a
    real regression (a broken fusion or a de-pooled allocation shows up
    as tens of percent, not two).
  * plan allocations/call must not exceed graph allocations/call in any
    cell — this is deterministic (allocation counts don't jitter), so it
    is checked strictly. The plan path exists to allocate less.
  * the raw plan executor must be allocation-free after warm-up:
    allocations_per_call == 0 and steady_state_arena_misses == 0,
    exactly. One stray allocation per RunPlan means an instruction
    escaped the planned arena.

Stdlib only; CI calls it as
  python3 ci/check_bench.py <build_dir>/BENCH_inference.json
  python3 ci/check_bench.py <build_dir>/BENCH_store.json
"""

import argparse
import json
import sys


def fmt_us(v):
    return f"{v:9.1f}"


def host_threads(bench):
    """Hardware-thread count from the embedded host metadata (0 if absent)."""
    host = bench.get("host")
    if isinstance(host, dict) and isinstance(host.get("hardware_threads"), int):
        return host["hardware_threads"]
    # Older BENCH_serving.json files carried the count at top level only.
    if isinstance(bench.get("hardware_threads"), int):
        return bench["hardware_threads"]
    return 0


def check_quantized(bench):
    """Gates the BENCH_quantized.json 'quantized' object; returns 0/1."""
    q = bench["quantized"]
    failures = []

    gemm = q.get("gemm", {})
    print(f"gemm {gemm.get('m')}x{gemm.get('k')}x{gemm.get('n')}: "
          f"fp32 {gemm.get('fp32_gflops', 0.0):.1f} GFLOP/s, "
          f"int8 {gemm.get('int8_gflops', 0.0):.1f} GFLOP/s "
          f"({gemm.get('int8_speedup', 0.0):.2f}x)")
    mem = q.get("weight_memory", {})
    print(f"weight memory: {mem.get('fp32_bytes', 0)} B fp32 -> "
          f"{mem.get('int8_bytes', 0)} B int8 "
          f"({mem.get('reduction', 0.0):.2f}x)")
    for row in q.get("f1", []):
        print(f"f1 {row['corpus']}/{row['task']}: "
              f"fp32 {row['fp32_macro']:.3f} int8 {row['int8_macro']:.3f}")
    print(f"max f1 delta {q.get('max_f1_delta', 1.0):.3f}, "
          f"evidence agreement {q.get('evidence_agreement', 0.0):.3f}, "
          f"prediction agreement {q.get('prediction_agreement', 0.0):.3f}")

    if q.get("served_precision") != "int8":
        failures.append(
            f"served_precision is '{q.get('served_precision')}' — the int8 "
            f"policy fell back to fp32 in the bench build")
    if q.get("fp32_fallback_layers", -1) != 0:
        failures.append(
            f"fp32_fallback_layers = {q.get('fp32_fallback_layers')} under "
            f"the pure int8 policy (must be 0: the tier is all-or-nothing)")
    if q.get("max_f1_delta", 1.0) > 0.10:
        failures.append(
            f"quantization moved macro-F1 by {q['max_f1_delta']:.3f} "
            f"(tolerance 0.10)")
    if q.get("evidence_agreement", 0.0) < 0.6:
        failures.append(
            f"golden evidence agreement {q.get('evidence_agreement', 0.0):.3f}"
            f" below 0.6 — int8 explanations drifted off the fp32 evidence")
    if q.get("prediction_agreement", 0.0) < 0.8:
        failures.append(
            f"golden prediction agreement "
            f"{q.get('prediction_agreement', 0.0):.3f} below 0.8")
    if mem.get("reduction", 0.0) < 3.0:
        failures.append(
            f"weight-memory reduction {mem.get('reduction', 0.0):.2f}x below "
            f"3.0x — per-column quantization params should cost far less")
    executor = q.get("plan_executor_int8", {})
    if executor.get("allocations_per_call", 1) != 0:
        failures.append(
            f"int8 plan executor allocates "
            f"{executor.get('allocations_per_call')}/call after warm-up "
            f"(must be exactly 0)")
    if executor.get("steady_state_arena_misses", 1) != 0:
        failures.append(
            f"int8 plan executor missed the workspace arena "
            f"{executor.get('steady_state_arena_misses')} times after "
            f"warm-up (must be exactly 0)")

    threads = host_threads(bench)
    if threads >= 4:
        if gemm.get("int8_speedup", 0.0) < 2.0:
            failures.append(
                f"int8 GEMM speedup {gemm.get('int8_speedup', 0.0):.2f}x "
                f"below 2.0x on a {threads}-thread host")
    else:
        print(f"SKIPPED: int8 GEMM >= 2x gate (host has {threads} hardware "
              f"thread(s); needs >= 4 for stable kernel timing)")

    if failures:
        print("\ncheck_bench: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncheck_bench: OK — int8 tier armed, accuracy within tolerance, "
          "executor allocation-free")
    return 0


def check_qa(bench):
    """Gates the BENCH_qa.json 'qa' object; returns 0/1."""
    q = bench["qa"]
    failures = []

    for row in q.get("accuracy", []):
        print(f"qa {row['corpus']}/{row['task']}: "
              f"oracle {row['oracle_agreement']:.3f}, "
              f"teacher F1 {row['teacher_f1']:.3f}, "
              f"surrogate F1 {row['surrogate_f1']:.3f}, "
              f"agreement {row['surrogate_agreement']:.3f}")
    points = q.get("cascade", [])
    for point in points:
        print(f"cascade @{point['threshold']:.2f}: "
              f"p50 {point['p50_us']:.1f}us p99 {point['p99_us']:.1f}us, "
              f"escalation {point['escalation_rate']:.3f}")
    tiers = q.get("tiers", {})
    print(f"per-table scoring: surrogate p50 "
          f"{tiers.get('surrogate_score_p50_us', 0.0):.1f}us vs teacher p50 "
          f"{tiers.get('teacher_predict_p50_us', 0.0):.1f}us "
          f"({tiers.get('surrogate_speedup', 0.0):.1f}x)")
    coverage = q.get("coverage", {})
    print(f"coverage: constituent {coverage.get('constituent', 0.0):.3f}, "
          f"composed {coverage.get('composed', 0.0):.3f} over "
          f"{coverage.get('items', 0)} items; judge evidence coverage "
          f"{coverage.get('judge_evidence_coverage', 0.0):.3f}")

    if q.get("min_oracle_agreement", 0.0) < 0.999:
        failures.append(
            f"teacher-path answer agreement with the direct-prediction "
            f"oracle is {q.get('min_oracle_agreement', 0.0):.3f} (must be "
            f"exact: composition changes provenance, never labels)")
    if q.get("min_surrogate_agreement", 0.0) < 0.85:
        failures.append(
            f"surrogate-vs-teacher answer agreement "
            f"{q.get('min_surrogate_agreement', 0.0):.3f} below the 0.85 "
            f"floor — the cheap tier is answering with different semantics")
    if not points:
        failures.append("'cascade' array is empty")
    previous_rate = 0.0
    for point in points:
        rate = point.get("escalation_rate", -1.0)
        if not 0.0 <= rate <= 1.0:
            failures.append(
                f"cascade @{point.get('threshold')}: escalation rate {rate} "
                f"outside [0, 1]")
        elif rate + 1e-9 < previous_rate:
            failures.append(
                f"cascade @{point.get('threshold')}: escalation rate {rate} "
                f"decreased as the confidence threshold rose")
        else:
            previous_rate = rate
    scoring = q.get("surrogate_scoring", {})
    if scoring.get("allocations_per_call", 1) != 0:
        failures.append(
            f"surrogate scoring allocates "
            f"{scoring.get('allocations_per_call')}/call after warm-up "
            f"(must be exactly 0)")
    if coverage.get("composed", 0.0) + 1e-9 < coverage.get("constituent", 1.0):
        failures.append(
            f"composed-justification coverage "
            f"{coverage.get('composed', 0.0):.3f} regressed below its "
            f"constituent coverage {coverage.get('constituent', 1.0):.3f} — "
            f"composition diluted the evidence")

    threads = host_threads(bench)
    if threads >= 4:
        if tiers.get("surrogate_speedup", 0.0) < 2.0:
            failures.append(
                f"surrogate per-table scoring only "
                f"{tiers.get('surrogate_speedup', 0.0):.2f}x cheaper than "
                f"the teacher on a {threads}-thread host (needs >= 2x to "
                f"justify the tier)")
    else:
        print(f"SKIPPED: surrogate >= 2x scoring-cost gate (host has "
              f"{threads} hardware thread(s); needs >= 4 for stable timing)")

    if failures:
        print("\ncheck_bench: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncheck_bench: OK — QA composition oracle-exact, surrogate "
          "agreement above floor, scoring allocation-free, coverage "
          "undiluted")
    return 0


def check_serving(bench):
    """Gates BENCH_serving.json's peak batched speedup; returns 0/1."""
    speedup = bench.get("peak_speedup_vs_sequential")
    if not isinstance(speedup, (int, float)):
        print("check_bench: BENCH_serving.json has no "
              "'peak_speedup_vs_sequential'", file=sys.stderr)
        return 1
    points = bench.get("load_points")
    if not isinstance(points, list) or not points:
        print("check_bench: 'load_points' array is empty", file=sys.stderr)
        return 1
    print(f"peak batched speedup vs sequential: {speedup:.2f}x over "
          f"{len(points)} load points")

    threads = host_threads(bench)
    if threads >= 4:
        if speedup < 1.5:
            print(f"\ncheck_bench: FAIL\n  - peak batched speedup "
                  f"{speedup:.2f}x below 1.5x on a {threads}-thread host",
                  file=sys.stderr)
            return 1
    else:
        print(f"SKIPPED: serving >= 1.5x gate (host has {threads} hardware "
              f"thread(s); batching needs >= 4 cores to fan out)")
    print("\ncheck_bench: OK — serving throughput gate "
          f"{'passed' if threads >= 4 else 'recorded (not armed)'}")
    return 0


def check_store(bench):
    """Gates the BENCH_store.json 'store' array; returns 0/1."""
    rows = bench.get("store")
    if not isinstance(rows, list) or not rows:
        print("check_bench: 'store' array is empty", file=sys.stderr)
        return 1
    floor = bench.get("recall_floor")
    if not isinstance(floor, (int, float)):
        print("check_bench: BENCH_store.json has no 'recall_floor'",
              file=sys.stderr)
        return 1

    failures = []
    print(f"{'corpus':>8s} {'shards':>6s} {'build ms':>9s} {'incr ms':>8s} "
          f"{'built':>5s} {'reused':>6s} {'p50 us':>8s} {'p99 us':>8s} "
          f"{'recall@10':>9s} {'allocs':>6s}")
    for row in rows:
        name = f"corpus={row['corpus']}/shards={row['shards']}"
        print(f"{row['corpus']:8d} {row['shards']:6d} "
              f"{row['build_ms']:9.1f} {row['incremental_rebuild_ms']:8.1f} "
              f"{row['segments_built']:5d} {row['segments_reused']:6d} "
              f"{row['search_p50_us']:8.1f} {row['search_p99_us']:8.1f} "
              f"{row['recall_at_10']:9.3f} "
              f"{row['steady_state_allocations']:6d}")
        if row["recall_at_10"] < floor:
            failures.append(
                f"{name}: recall@10 {row['recall_at_10']:.3f} below the "
                f"floor {floor}")
        if row["roundtrip_identical"] is not True:
            failures.append(
                f"{name}: save->load roundtrip was not bit-identical")
        if row["steady_state_allocations"] != 0:
            failures.append(
                f"{name}: steady-state serial search performed "
                f"{row['steady_state_allocations']} allocations "
                f"(must be exactly 0)")
        if row["shards"] > 1 and row["segments_built"] >= row["shards"]:
            failures.append(
                f"{name}: incremental rebuild re-encoded "
                f"{row['segments_built']} of {row['shards']} segments — "
                f"copy-on-write reuse is not happening")

    if failures:
        print("\ncheck_bench: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncheck_bench: OK — store recall, roundtrip identity, "
          "zero-allocation steady state, and copy-on-write all hold")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "bench_json",
        help="path to a BENCH_*.json (inference, store, serving, quantized); "
        "the gate set is picked from the file's content",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.10,
        help="max allowed plan_p50 / graph_p50 per cell (default %(default)s, "
        "a timer-noise guard; the paths share their GEMM kernels)",
    )
    args = parser.parse_args()

    try:
        with open(args.bench_json, "r", encoding="utf-8") as f:
            bench = json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_bench: cannot read {args.bench_json}: {err}",
              file=sys.stderr)
        return 1

    if "quantized" in bench:
        return check_quantized(bench)

    if "qa" in bench:
        return check_qa(bench)

    if "peak_speedup_vs_sequential" in bench:
        return check_serving(bench)

    if "store" in bench:
        return check_store(bench)

    matrix = bench.get("plan_vs_graph")
    if not isinstance(matrix, dict):
        print("check_bench: BENCH_inference.json has no 'plan_vs_graph' "
              "object — was the benchmark built from this tree?",
              file=sys.stderr)
        return 1

    failures = []
    rows = []
    for method, cells in matrix.items():
        if method == "plan_executor":
            continue
        for batch, cell in sorted(cells.items()):
            plan, graph = cell["plan"], cell["graph"]
            ratio = plan["p50_us"] / graph["p50_us"]
            rows.append((method, batch, plan, graph, ratio))
            if ratio > args.max_ratio:
                failures.append(
                    f"{method}/{batch}: plan p50 {plan['p50_us']:.1f}us vs "
                    f"graph p50 {graph['p50_us']:.1f}us "
                    f"(ratio {ratio:.3f} > {args.max_ratio})")
            if plan["allocations_per_call"] > graph["allocations_per_call"]:
                failures.append(
                    f"{method}/{batch}: plan allocates "
                    f"{plan['allocations_per_call']:.1f}/call vs graph "
                    f"{graph['allocations_per_call']:.1f}/call — the plan "
                    f"path must not allocate more than the graph walk")

    if not rows:
        print("check_bench: 'plan_vs_graph' has no (method, batch) cells",
              file=sys.stderr)
        return 1

    print(f"{'method':24s} {'batch':8s} {'plan p50':>9s} {'graph p50':>9s} "
          f"{'ratio':>6s} {'plan allocs':>11s} {'graph allocs':>12s}")
    for method, batch, plan, graph, ratio in rows:
        print(f"{method:24s} {batch:8s} {fmt_us(plan['p50_us'])} "
              f"{fmt_us(graph['p50_us'])} {ratio:6.3f} "
              f"{plan['allocations_per_call']:11.1f} "
              f"{graph['allocations_per_call']:12.1f}")

    executor = matrix.get("plan_executor")
    if not isinstance(executor, dict):
        failures.append("'plan_vs_graph.plan_executor' section missing")
    else:
        print(f"\nplan executor: p50 {executor['p50_us']:.1f}us, "
              f"p99 {executor['p99_us']:.1f}us, "
              f"{executor['allocations_per_call']:.2f} allocations/call, "
              f"{executor['steady_state_arena_misses']} arena misses")
        if executor["allocations_per_call"] != 0:
            failures.append(
                f"plan executor allocates "
                f"{executor['allocations_per_call']:.2f}/call after warm-up "
                f"(must be exactly 0)")
        if executor["steady_state_arena_misses"] != 0:
            failures.append(
                f"plan executor missed the workspace arena "
                f"{executor['steady_state_arena_misses']} times after "
                f"warm-up (must be exactly 0)")

    if failures:
        print("\ncheck_bench: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncheck_bench: OK — plan path within tolerance everywhere, "
          "executor allocation-free")
    return 0


if __name__ == "__main__":
    sys.exit(main())
