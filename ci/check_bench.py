#!/usr/bin/env python3
"""Bench-regression gate over BENCH_inference.json / BENCH_store.json.

Dispatches on content. A file with a "store" array (BENCH_store.json,
from bench_embedding_store) is gated on:

  * recall_at_10 >= the file's own recall_floor in every row — the
    segmented HNSW must stay an accurate index, not just a fast one;
  * roundtrip_identical is true everywhere: a persisted store reloaded
    from disk answered every probe bit-identically;
  * steady_state_allocations == 0 exactly: the warm serial search path
    must not touch the heap;
  * multi-shard incremental rebuilds re-encode only dirty segments
    (segments_built < shards when shards > 1).

A file with a "plan_vs_graph" object (BENCH_inference.json) is gated as
before — fails the job (exit 1) if the compiled-plan serving path has
regressed behind the graph walk:

  * plan p50 must not exceed graph p50 by more than --max-ratio for any
    (method, batch_size) cell. Both paths are bound by the same shared
    GEMM kernels, so their p50s sit within a few percent of each other;
    the tolerance absorbs container timer noise while still catching a
    real regression (a broken fusion or a de-pooled allocation shows up
    as tens of percent, not two).
  * plan allocations/call must not exceed graph allocations/call in any
    cell — this is deterministic (allocation counts don't jitter), so it
    is checked strictly. The plan path exists to allocate less.
  * the raw plan executor must be allocation-free after warm-up:
    allocations_per_call == 0 and steady_state_arena_misses == 0,
    exactly. One stray allocation per RunPlan means an instruction
    escaped the planned arena.

Stdlib only; CI calls it as
  python3 ci/check_bench.py <build_dir>/BENCH_inference.json
  python3 ci/check_bench.py <build_dir>/BENCH_store.json
"""

import argparse
import json
import sys


def fmt_us(v):
    return f"{v:9.1f}"


def check_store(bench):
    """Gates the BENCH_store.json 'store' array; returns 0/1."""
    rows = bench.get("store")
    if not isinstance(rows, list) or not rows:
        print("check_bench: 'store' array is empty", file=sys.stderr)
        return 1
    floor = bench.get("recall_floor")
    if not isinstance(floor, (int, float)):
        print("check_bench: BENCH_store.json has no 'recall_floor'",
              file=sys.stderr)
        return 1

    failures = []
    print(f"{'corpus':>8s} {'shards':>6s} {'build ms':>9s} {'incr ms':>8s} "
          f"{'built':>5s} {'reused':>6s} {'p50 us':>8s} {'p99 us':>8s} "
          f"{'recall@10':>9s} {'allocs':>6s}")
    for row in rows:
        name = f"corpus={row['corpus']}/shards={row['shards']}"
        print(f"{row['corpus']:8d} {row['shards']:6d} "
              f"{row['build_ms']:9.1f} {row['incremental_rebuild_ms']:8.1f} "
              f"{row['segments_built']:5d} {row['segments_reused']:6d} "
              f"{row['search_p50_us']:8.1f} {row['search_p99_us']:8.1f} "
              f"{row['recall_at_10']:9.3f} "
              f"{row['steady_state_allocations']:6d}")
        if row["recall_at_10"] < floor:
            failures.append(
                f"{name}: recall@10 {row['recall_at_10']:.3f} below the "
                f"floor {floor}")
        if row["roundtrip_identical"] is not True:
            failures.append(
                f"{name}: save->load roundtrip was not bit-identical")
        if row["steady_state_allocations"] != 0:
            failures.append(
                f"{name}: steady-state serial search performed "
                f"{row['steady_state_allocations']} allocations "
                f"(must be exactly 0)")
        if row["shards"] > 1 and row["segments_built"] >= row["shards"]:
            failures.append(
                f"{name}: incremental rebuild re-encoded "
                f"{row['segments_built']} of {row['shards']} segments — "
                f"copy-on-write reuse is not happening")

    if failures:
        print("\ncheck_bench: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncheck_bench: OK — store recall, roundtrip identity, "
          "zero-allocation steady state, and copy-on-write all hold")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="path to BENCH_inference.json")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.10,
        help="max allowed plan_p50 / graph_p50 per cell (default %(default)s, "
        "a timer-noise guard; the paths share their GEMM kernels)",
    )
    args = parser.parse_args()

    try:
        with open(args.bench_json, "r", encoding="utf-8") as f:
            bench = json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_bench: cannot read {args.bench_json}: {err}",
              file=sys.stderr)
        return 1

    if "store" in bench:
        return check_store(bench)

    matrix = bench.get("plan_vs_graph")
    if not isinstance(matrix, dict):
        print("check_bench: BENCH_inference.json has no 'plan_vs_graph' "
              "object — was the benchmark built from this tree?",
              file=sys.stderr)
        return 1

    failures = []
    rows = []
    for method, cells in matrix.items():
        if method == "plan_executor":
            continue
        for batch, cell in sorted(cells.items()):
            plan, graph = cell["plan"], cell["graph"]
            ratio = plan["p50_us"] / graph["p50_us"]
            rows.append((method, batch, plan, graph, ratio))
            if ratio > args.max_ratio:
                failures.append(
                    f"{method}/{batch}: plan p50 {plan['p50_us']:.1f}us vs "
                    f"graph p50 {graph['p50_us']:.1f}us "
                    f"(ratio {ratio:.3f} > {args.max_ratio})")
            if plan["allocations_per_call"] > graph["allocations_per_call"]:
                failures.append(
                    f"{method}/{batch}: plan allocates "
                    f"{plan['allocations_per_call']:.1f}/call vs graph "
                    f"{graph['allocations_per_call']:.1f}/call — the plan "
                    f"path must not allocate more than the graph walk")

    if not rows:
        print("check_bench: 'plan_vs_graph' has no (method, batch) cells",
              file=sys.stderr)
        return 1

    print(f"{'method':24s} {'batch':8s} {'plan p50':>9s} {'graph p50':>9s} "
          f"{'ratio':>6s} {'plan allocs':>11s} {'graph allocs':>12s}")
    for method, batch, plan, graph, ratio in rows:
        print(f"{method:24s} {batch:8s} {fmt_us(plan['p50_us'])} "
              f"{fmt_us(graph['p50_us'])} {ratio:6.3f} "
              f"{plan['allocations_per_call']:11.1f} "
              f"{graph['allocations_per_call']:12.1f}")

    executor = matrix.get("plan_executor")
    if not isinstance(executor, dict):
        failures.append("'plan_vs_graph.plan_executor' section missing")
    else:
        print(f"\nplan executor: p50 {executor['p50_us']:.1f}us, "
              f"p99 {executor['p99_us']:.1f}us, "
              f"{executor['allocations_per_call']:.2f} allocations/call, "
              f"{executor['steady_state_arena_misses']} arena misses")
        if executor["allocations_per_call"] != 0:
            failures.append(
                f"plan executor allocates "
                f"{executor['allocations_per_call']:.2f}/call after warm-up "
                f"(must be exactly 0)")
        if executor["steady_state_arena_misses"] != 0:
            failures.append(
                f"plan executor missed the workspace arena "
                f"{executor['steady_state_arena_misses']} times after "
                f"warm-up (must be exactly 0)")

    if failures:
        print("\ncheck_bench: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncheck_bench: OK — plan path within tolerance everywhere, "
          "executor allocation-free")
    return 0


if __name__ == "__main__":
    sys.exit(main())
