#!/usr/bin/env python3
"""Bench-regression gate over BENCH_inference.json.

Reads the "plan_vs_graph" object bench_inference_session emits and fails
the job (exit 1) if the compiled-plan serving path has regressed behind
the graph walk:

  * plan p50 must not exceed graph p50 by more than --max-ratio for any
    (method, batch_size) cell. Both paths are bound by the same shared
    GEMM kernels, so their p50s sit within a few percent of each other;
    the tolerance absorbs container timer noise while still catching a
    real regression (a broken fusion or a de-pooled allocation shows up
    as tens of percent, not two).
  * plan allocations/call must not exceed graph allocations/call in any
    cell — this is deterministic (allocation counts don't jitter), so it
    is checked strictly. The plan path exists to allocate less.
  * the raw plan executor must be allocation-free after warm-up:
    allocations_per_call == 0 and steady_state_arena_misses == 0,
    exactly. One stray allocation per RunPlan means an instruction
    escaped the planned arena.

Stdlib only; CI calls it as
  python3 ci/check_bench.py <build_dir>/BENCH_inference.json
"""

import argparse
import json
import sys


def fmt_us(v):
    return f"{v:9.1f}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="path to BENCH_inference.json")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.10,
        help="max allowed plan_p50 / graph_p50 per cell (default %(default)s, "
        "a timer-noise guard; the paths share their GEMM kernels)",
    )
    args = parser.parse_args()

    try:
        with open(args.bench_json, "r", encoding="utf-8") as f:
            bench = json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_bench: cannot read {args.bench_json}: {err}",
              file=sys.stderr)
        return 1

    matrix = bench.get("plan_vs_graph")
    if not isinstance(matrix, dict):
        print("check_bench: BENCH_inference.json has no 'plan_vs_graph' "
              "object — was the benchmark built from this tree?",
              file=sys.stderr)
        return 1

    failures = []
    rows = []
    for method, cells in matrix.items():
        if method == "plan_executor":
            continue
        for batch, cell in sorted(cells.items()):
            plan, graph = cell["plan"], cell["graph"]
            ratio = plan["p50_us"] / graph["p50_us"]
            rows.append((method, batch, plan, graph, ratio))
            if ratio > args.max_ratio:
                failures.append(
                    f"{method}/{batch}: plan p50 {plan['p50_us']:.1f}us vs "
                    f"graph p50 {graph['p50_us']:.1f}us "
                    f"(ratio {ratio:.3f} > {args.max_ratio})")
            if plan["allocations_per_call"] > graph["allocations_per_call"]:
                failures.append(
                    f"{method}/{batch}: plan allocates "
                    f"{plan['allocations_per_call']:.1f}/call vs graph "
                    f"{graph['allocations_per_call']:.1f}/call — the plan "
                    f"path must not allocate more than the graph walk")

    if not rows:
        print("check_bench: 'plan_vs_graph' has no (method, batch) cells",
              file=sys.stderr)
        return 1

    print(f"{'method':24s} {'batch':8s} {'plan p50':>9s} {'graph p50':>9s} "
          f"{'ratio':>6s} {'plan allocs':>11s} {'graph allocs':>12s}")
    for method, batch, plan, graph, ratio in rows:
        print(f"{method:24s} {batch:8s} {fmt_us(plan['p50_us'])} "
              f"{fmt_us(graph['p50_us'])} {ratio:6.3f} "
              f"{plan['allocations_per_call']:11.1f} "
              f"{graph['allocations_per_call']:12.1f}")

    executor = matrix.get("plan_executor")
    if not isinstance(executor, dict):
        failures.append("'plan_vs_graph.plan_executor' section missing")
    else:
        print(f"\nplan executor: p50 {executor['p50_us']:.1f}us, "
              f"p99 {executor['p99_us']:.1f}us, "
              f"{executor['allocations_per_call']:.2f} allocations/call, "
              f"{executor['steady_state_arena_misses']} arena misses")
        if executor["allocations_per_call"] != 0:
            failures.append(
                f"plan executor allocates "
                f"{executor['allocations_per_call']:.2f}/call after warm-up "
                f"(must be exactly 0)")
        if executor["steady_state_arena_misses"] != 0:
            failures.append(
                f"plan executor missed the workspace arena "
                f"{executor['steady_state_arena_misses']} times after "
                f"warm-up (must be exactly 0)")

    if failures:
        print("\ncheck_bench: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncheck_bench: OK — plan path within tolerance everywhere, "
          "executor allocation-free")
    return 0


if __name__ == "__main__":
    sys.exit(main())
