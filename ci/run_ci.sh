#!/usr/bin/env bash
# CI driver: one job per invocation, mirroring .github/workflows/ci.yml.
#
#   ci/run_ci.sh release      Release build (warnings-as-errors), full
#                             ctest suite, parallel-scaling benchmark.
#   ci/run_ci.sh asan-ubsan   Address+UB sanitizer build, tier1 tests
#                             plus the chaos suite (fault-injection
#                             paths are exactly where lifetime bugs
#                             hide, so they run under ASan).
#   ci/run_ci.sh tsan         ThreadSanitizer build, tier1 tests with
#                             EXPLAINTI_NUM_THREADS=4 so every parallel
#                             region actually fans out under TSan.
#
# Run locally exactly as CI does: each job uses its own build directory,
# so jobs can run back-to-back without reconfiguring.

set -euo pipefail

JOB="${1:-release}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${CI_PARALLEL_JOBS:-$(nproc)}"

configure_and_build() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$ROOT" -DEXPLAINTI_WERROR=ON "$@"
  cmake --build "$build_dir" -j "$JOBS"
}

case "$JOB" in
  release)
    BUILD="$ROOT/build-ci-release"
    configure_and_build "$BUILD" -DCMAKE_BUILD_TYPE=Release
    (cd "$BUILD" && ctest --output-on-failure -j "$JOBS")
    # Scaling benchmark doubles as a determinism gate (checksums must
    # match across 1/2/4 threads); keep its JSON as a CI artifact.
    (cd "$BUILD" && ./bench/bench_parallel_scaling)
    echo "BENCH_parallel.json:"
    cat "$BUILD/BENCH_parallel.json"
    # Serving benchmark: tape vs no-grad per-call latency and allocation
    # counts. It hard-fails if the paths' probabilities are not
    # bit-identical or a warmed-up no-grad Predict misses the arena.
    (cd "$BUILD" && ./bench/bench_inference_session)
    echo "BENCH_inference.json:"
    cat "$BUILD/BENCH_inference.json"
    # Serving benchmark: open-loop Poisson load against the
    # micro-batching InferenceServer vs the sequential baseline. On
    # >=4-thread hosts it hard-fails unless batched throughput beats
    # sequential by 1.5x at the highest offered load; everywhere it
    # hard-fails if the queue ever exceeded its bound. The release
    # artifacts are incomplete without the JSON, so its absence fails
    # the job.
    (cd "$BUILD" && ./bench/bench_online_simulation)
    test -f "$BUILD/BENCH_serving.json" || {
      echo "BENCH_serving.json missing from release artifacts" >&2
      exit 1
    }
    echo "BENCH_serving.json:"
    cat "$BUILD/BENCH_serving.json"
    ;;
  asan-ubsan)
    BUILD="$ROOT/build-ci-asan"
    configure_and_build "$BUILD" \
      -DCMAKE_BUILD_TYPE=Debug -DEXPLAINTI_SANITIZE=address,undefined
    (cd "$BUILD" && \
     ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
     UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
     ctest -L 'tier1|chaos' --output-on-failure -j "$JOBS")
    ;;
  tsan)
    BUILD="$ROOT/build-ci-tsan"
    configure_and_build "$BUILD" \
      -DCMAKE_BUILD_TYPE=Debug -DEXPLAINTI_SANITIZE=thread
    (cd "$BUILD" && \
     EXPLAINTI_NUM_THREADS=4 \
     TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
     ctest -L tier1 --output-on-failure -j "$JOBS")
    ;;
  *)
    echo "unknown CI job: $JOB (expected release, asan-ubsan, or tsan)" >&2
    exit 2
    ;;
esac

echo "ci job '$JOB' passed"
