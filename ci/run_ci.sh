#!/usr/bin/env bash
# CI driver: one job per invocation, mirroring .github/workflows/ci.yml.
#
#   ci/run_ci.sh release      Release build (warnings-as-errors), full
#                             ctest suite, benchmarks, the
#                             check_bench.py plan-vs-graph regression
#                             gate, and the bench-artifacts bundle.
#   ci/run_ci.sh asan-ubsan   Address+UB sanitizer build, tier1 tests
#                             plus the chaos suite (fault-injection
#                             paths are exactly where lifetime bugs
#                             hide, so they run under ASan).
#   ci/run_ci.sh tsan         ThreadSanitizer build, tier1 tests plus the
#                             chaos suite (fault-injection exercises the
#                             swap/shed paths where races hide) with
#                             EXPLAINTI_NUM_THREADS=4 so every parallel
#                             region actually fans out under TSan.
#
# Run locally exactly as CI does: each job uses its own build directory,
# so jobs can run back-to-back without reconfiguring. Set
# EXPLAINTI_CCACHE=ON in the environment (CI does) to compile through
# ccache; the flag is forwarded to CMake and ignored when ccache is not
# installed.

set -euo pipefail

JOB="${1:-release}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${CI_PARALLEL_JOBS:-$(nproc)}"
# Per-test wall-clock cap: a hung test fails loudly instead of eating the
# job-level timeout-minutes budget in silence.
CTEST_TIMEOUT="${CI_CTEST_TIMEOUT:-300}"

configure_and_build() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$ROOT" -DEXPLAINTI_WERROR=ON \
    -DEXPLAINTI_CCACHE="${EXPLAINTI_CCACHE:-OFF}" "$@"
  cmake --build "$build_dir" -j "$JOBS"
}

report_ccache() {
  if [ "${EXPLAINTI_CCACHE:-OFF}" = "ON" ] && command -v ccache >/dev/null; then
    echo "ccache statistics:"
    ccache -s
  fi
}

case "$JOB" in
  release)
    BUILD="$ROOT/build-ci-release"
    configure_and_build "$BUILD" -DCMAKE_BUILD_TYPE=Release
    (cd "$BUILD" && ctest --output-on-failure --timeout "$CTEST_TIMEOUT" \
       -j "$JOBS")
    # Scaling benchmark doubles as a determinism gate (checksums must
    # match across 1/2/4 threads); keep its JSON as a CI artifact.
    (cd "$BUILD" && ./bench/bench_parallel_scaling)
    echo "BENCH_parallel.json:"
    cat "$BUILD/BENCH_parallel.json"
    # Serving benchmark: tape vs no-grad per-call latency and allocation
    # counts, plus the compiled-plan-vs-graph-walk matrix. It hard-fails
    # if any pair of paths' outputs are not bit-identical or a warmed-up
    # fast path misses the arena.
    (cd "$BUILD" && ./bench/bench_inference_session)
    echo "BENCH_inference.json:"
    cat "$BUILD/BENCH_inference.json"
    # Bench-regression gate: the compiled-plan path must not fall behind
    # the graph walk (p50 within tolerance, never more allocations) and
    # the raw plan executor must stay allocation-free after warm-up.
    python3 "$ROOT/ci/check_bench.py" "$BUILD/BENCH_inference.json"
    # Embedding-store benchmark: sharded search, copy-on-write rebuilds,
    # and the persisted-store roundtrip (which hard-fails inside the
    # binary if a reloaded store is not bit-identical). check_bench.py
    # re-gates recall@10, roundtrip identity, the zero-allocation steady
    # state, and dirty-segment-only incremental rebuilds.
    (cd "$BUILD" && ./bench/bench_embedding_store)
    echo "BENCH_store.json:"
    cat "$BUILD/BENCH_store.json"
    python3 "$ROOT/ci/check_bench.py" "$BUILD/BENCH_store.json"
    # Serving benchmark: open-loop Poisson load against the
    # micro-batching InferenceServer vs the sequential baseline. On
    # >=4-thread hosts it hard-fails unless batched throughput beats
    # sequential by 1.5x at the highest offered load; everywhere it
    # hard-fails if the queue ever exceeded its bound.
    (cd "$BUILD" && ./bench/bench_online_simulation)
    echo "BENCH_serving.json:"
    cat "$BUILD/BENCH_serving.json"
    # The serving gate reads the host metadata embedded in the JSON: on
    # >=4-thread hosts it enforces the 1.5x batched speedup, elsewhere it
    # prints an explicit SKIPPED line instead of silently passing.
    python3 "$ROOT/ci/check_bench.py" "$BUILD/BENCH_serving.json"
    # Quantized-serving benchmark: fp32-vs-int8 GEMM throughput, end-to-end
    # Predict/Explain latency, weight memory, macro-F1 deltas on both
    # corpora, and golden evidence-token agreement. check_bench.py gates
    # accuracy drift, the all-or-nothing int8 policy, the allocation-free
    # executor, and (on >=4-thread hosts) the 2x int8 GEMM speedup.
    (cd "$BUILD" && ./bench/bench_quantized)
    echo "BENCH_quantized.json:"
    cat "$BUILD/BENCH_quantized.json"
    python3 "$ROOT/ci/check_bench.py" "$BUILD/BENCH_quantized.json"
    # Table-QA benchmark: teacher-path answers vs the direct-prediction
    # oracle (must be exact), surrogate-vs-teacher agreement on both
    # corpora, cascade latency/escalation at three thresholds, the
    # allocation-free surrogate scoring path, and composed-justification
    # judge coverage. check_bench.py gates agreement floors, escalation
    # monotonicity, the exactly-0 alloc count, and (on >=4-thread hosts)
    # the 2x surrogate scoring advantage.
    (cd "$BUILD" && ./bench/bench_qa)
    echo "BENCH_qa.json:"
    cat "$BUILD/BENCH_qa.json"
    python3 "$ROOT/ci/check_bench.py" "$BUILD/BENCH_qa.json"
    # Consolidate every benchmark JSON into one artifact bundle. The
    # release artifacts are incomplete without all of them, so a missing
    # file fails the job rather than silently uploading a partial set.
    BUNDLE="$BUILD/bench-artifacts"
    rm -rf "$BUNDLE"
    mkdir -p "$BUNDLE"
    for bench_json in BENCH_parallel.json BENCH_inference.json \
                      BENCH_store.json BENCH_serving.json \
                      BENCH_quantized.json BENCH_qa.json; do
      if [ ! -f "$BUILD/$bench_json" ]; then
        echo "$bench_json missing from release artifacts" >&2
        exit 1
      fi
      cp "$BUILD/$bench_json" "$BUNDLE/"
    done
    echo "bench-artifacts bundle:"
    ls -l "$BUNDLE"
    ;;
  asan-ubsan)
    BUILD="$ROOT/build-ci-asan"
    configure_and_build "$BUILD" \
      -DCMAKE_BUILD_TYPE=Debug -DEXPLAINTI_SANITIZE=address,undefined
    (cd "$BUILD" && \
     ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
     UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
     ctest -L 'tier1|chaos' --output-on-failure --timeout "$CTEST_TIMEOUT" \
       -j "$JOBS")
    ;;
  tsan)
    BUILD="$ROOT/build-ci-tsan"
    configure_and_build "$BUILD" \
      -DCMAKE_BUILD_TYPE=Debug -DEXPLAINTI_SANITIZE=thread
    (cd "$BUILD" && \
     EXPLAINTI_NUM_THREADS=4 \
     TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
     ctest -L 'tier1|chaos' --output-on-failure --timeout "$CTEST_TIMEOUT" \
       -j "$JOBS")
    ;;
  *)
    echo "unknown CI job: $JOB (expected release, asan-ubsan, or tsan)" >&2
    exit 2
    ;;
esac

report_ccache
echo "ci job '$JOB' passed"
